// Ten of the thirteen protocol-aware checks of opx_analyze, plus the
// driver. The original six operate on the token stream of SourceFile — a
// deliberately lightweight parse (no libclang in this toolchain):
// declarations, call sites, and brace/angle matching are recognized
// lexically, which is exact enough for the conventions this tree follows
// and is what keeps the analyzer dependency-free and fast. The v2 checks
// (ballot-guard, quorum-arith, blocking-in-loop, span-escape) additionally
// use the per-function CFG and dominance/guard engine of cfg.h (DESIGN.md
// §13); the v3 interprocedural checks (wire-taint, index-arith,
// ref-lifetime) live in taint_checks.cc on top of the call graph
// (callgraph.h, DESIGN.md §16).
#include <chrono>
#include <algorithm>
#include <map>
#include <thread>

#include "tools/analyze/analyzer.h"
#include "tools/analyze/cfg.h"

namespace opx::analyze {

namespace {

bool UnderAnyDir(const std::string& path, const std::vector<std::string>& dirs) {
  for (const std::string& d : dirs) {
    if (path.size() > d.size() && path.compare(0, d.size(), d) == 0 &&
        path[d.size()] == '/') {
      return true;
    }
  }
  return false;
}

// Appends a finding unless the line carries a covering NOLINT.
void Add(const SourceFile& sf, int line, const char* check, std::string key,
         std::string message, std::vector<Finding>* out) {
  if (sf.Suppressed(line, check)) {
    return;
  }
  Finding f;
  f.check = check;
  f.file = sf.path;
  f.line = line;
  f.key = std::move(key);
  f.message = std::move(message);
  out->push_back(std::move(f));
}

// Ordinal-suffixed key: stable across line drift, distinguishes repeated
// occurrences of the same symbol within one file.
std::string OrdinalKey(const std::string& base, int ordinal) {
  return ordinal == 0 ? base : base + "#" + std::to_string(ordinal);
}

// Index of the matching closer for the opener at `open` ('(' / '{' / '<').
// Returns toks.size() when unbalanced.
size_t MatchForward(const std::vector<Tok>& toks, size_t open, const char* opener,
                    const char* closer) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].Is(opener)) {
      ++depth;
    } else if (toks[i].Is(closer)) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

// --------------------------------------------------------------------------
// opx-determinism
// --------------------------------------------------------------------------

void CheckDeterminism(const AnalyzerConfig& cfg, FileSet& files,
                      std::vector<Finding>* out, int* nfiles) {
  static const char* kCheck = "opx-determinism";
  // Banned outright in deterministic code: hash-ordered containers (their
  // iteration order is implementation-defined) and every ambient source of
  // nondeterminism. util::Rng (seeded, replayable) is the sanctioned one.
  static const std::vector<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  static const std::vector<std::string> kRandomClock = {
      "random_device", "system_clock", "steady_clock", "high_resolution_clock"};
  static const std::vector<std::string> kBannedCalls = {"rand", "srand", "time", "clock"};

  std::set<std::string> seen;  // de-duplicate dirs listed twice
  std::vector<std::string> paths;
  for (const std::string& d : cfg.determinism.dirs) {
    for (std::string& p : files.ListDir(d)) {
      if (seen.insert(p).second) {
        paths.push_back(std::move(p));
      }
    }
  }
  for (const std::string& d : cfg.determinism.function_dirs) {
    for (std::string& p : files.ListDir(d)) {
      if (seen.insert(p).second) {
        paths.push_back(std::move(p));
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  for (const std::string& path : paths) {
    const SourceFile* sf = files.Get(path);
    if (sf == nullptr) {
      continue;
    }
    ++*nfiles;
    const bool det_dir = UnderAnyDir(path, cfg.determinism.dirs);
    const bool fn_dir = UnderAnyDir(path, cfg.determinism.function_dirs);
    std::map<std::string, int> ordinals;
    const std::vector<Tok>& t = sf->toks;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) {
        continue;
      }
      const std::string& id = t[i].text;
      const bool qualified_std =
          i >= 2 && t[i - 1].Is("::") && t[i - 2].IsIdent("std");
      const bool member_access = i >= 1 && (t[i - 1].Is(".") || t[i - 1].Is("->"));

      if (det_dir && Contains(kUnordered, id)) {
        Add(*sf, t[i].line, kCheck, OrdinalKey(id, ordinals[id]++),
            "std::" + id + " in deterministic code: iteration order is "
            "implementation-defined; use std::map/std::set (or justify with NOLINT)",
            out);
      } else if (det_dir && Contains(kRandomClock, id) && !member_access) {
        Add(*sf, t[i].line, kCheck, OrdinalKey(id, ordinals[id]++),
            "std::" + id + " in deterministic code: replay requires virtual time "
            "and the seeded util::Rng",
            out);
      } else if (det_dir && Contains(kBannedCalls, id) && !member_access &&
                 i + 1 < t.size() && t[i + 1].Is("(") &&
                 (i == 0 || !t[i - 1].Is("::") || qualified_std)) {
        // `time(...)`/`rand(...)` as a free or std:: call; member calls like
        // `sim.time()` and foreign qualifications are fine.
        Add(*sf, t[i].line, kCheck, OrdinalKey(id, ordinals[id]++),
            id + "() call in deterministic code: ambient randomness/clocks break replay",
            out);
      } else if (fn_dir && id == "function" && qualified_std) {
        Add(*sf, t[i].line, kCheck, OrdinalKey("std-function", ordinals["std-function"]++),
            "std::function regression: PR 2 banned it from sim/protocol paths "
            "(copyable type-erasure forces allocations; use util::UniqueFunction)",
            out);
      }
    }
  }
}

// --------------------------------------------------------------------------
// opx-persist-order
// --------------------------------------------------------------------------

namespace {

// Locates the *definition* of `name` (skipping declarations, which end in
// ';' before any '{'). Returns the [body_open, body_close] token range, or
// false when no definition exists in this file.
bool FindFunctionBody(const std::vector<Tok>& toks, const std::string& name,
                      size_t* body_open, size_t* body_close) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].IsIdent(name) || !toks[i + 1].Is("(")) {
      continue;
    }
    const size_t close_paren = MatchForward(toks, i + 1, "(", ")");
    if (close_paren >= toks.size()) {
      continue;
    }
    // Skip trailing `const` / `noexcept` / `override`; a `;` first means this
    // was only a declaration (or a call site used as a statement).
    size_t j = close_paren + 1;
    while (j < toks.size() &&
           (toks[j].IsIdent("const") || toks[j].IsIdent("noexcept") ||
            toks[j].IsIdent("override") || toks[j].IsIdent("final"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].Is("{")) {
      *body_open = j;
      *body_close = MatchForward(toks, j, "{", "}");
      return *body_close < toks.size();
    }
  }
  return false;
}

}  // namespace

void CheckPersistOrder(const AnalyzerConfig& cfg, FileSet& files,
                       std::vector<Finding>* out, int* nfiles,
                       std::vector<std::string>* errors) {
  static const char* kCheck = "opx-persist-order";
  std::set<std::string> counted;
  for (const HandlerRule& rule : cfg.handlers) {
    const SourceFile* sf = files.Get(rule.file);
    if (sf == nullptr) {
      errors->push_back("opx-persist-order: cannot read " + rule.file);
      continue;
    }
    if (counted.insert(rule.file).second) {
      ++*nfiles;
    }
    size_t open = 0;
    size_t close = 0;
    if (!FindFunctionBody(sf->toks, rule.function, &open, &close)) {
      errors->push_back("opx-persist-order: no definition of " + rule.function +
                        " in " + rule.file + " (stale rule?)");
      continue;
    }
    const std::vector<Tok>& t = sf->toks;

    // Walk the body once: track locals declared with an ack message type,
    // the first durable mutation, and the first send whose argument list
    // names an ack type (directly or through such a local).
    std::set<std::string> ack_locals;
    size_t first_mutation = 0;
    size_t first_ack_send = 0;
    int ack_send_line = 0;
    std::string ack_send_what;
    for (size_t i = open + 1; i < close; ++i) {
      if (t[i].kind != TokKind::kIdent) {
        continue;
      }
      if (Contains(rule.ack_types, t[i].text) && i + 1 < close &&
          t[i + 1].kind == TokKind::kIdent) {
        ack_locals.insert(t[i + 1].text);  // `Promise promise;`-style local
        continue;
      }
      const bool is_call = i + 1 < close && t[i + 1].Is("(");
      if (is_call && Contains(rule.mutators, t[i].text)) {
        if (first_mutation == 0) {
          first_mutation = i;
        }
        continue;
      }
      if (is_call && Contains(rule.sends, t[i].text) && first_ack_send == 0) {
        if (rule.ack_types.empty()) {
          // The send function itself constructs and emits the ack (e.g. a
          // SendAcceptSyncTo helper that builds the AcceptSync internally):
          // the bare call marks the send.
          first_ack_send = i;
          ack_send_line = t[i].line;
          ack_send_what = t[i].text;
          continue;
        }
        const size_t args_end = MatchForward(t, i + 1, "(", ")");
        for (size_t a = i + 2; a < args_end; ++a) {
          if (t[a].kind == TokKind::kIdent &&
              (Contains(rule.ack_types, t[a].text) || ack_locals.count(t[a].text) > 0)) {
            first_ack_send = i;
            ack_send_line = t[i].line;
            ack_send_what = t[a].text;
            break;
          }
        }
      }
    }

    if (first_ack_send != 0 && (first_mutation == 0 || first_mutation > first_ack_send)) {
      std::string muts;
      for (const std::string& m : rule.mutators) {
        muts += (muts.empty() ? "" : "/") + m;
      }
      Add(*sf, ack_send_line, kCheck, rule.function,
          rule.function + " sends `" + ack_send_what + "` before the durable write (" +
              muts + ") it acknowledges — a crash between send and write breaks "
              "the promise the reply advertises (Appendix A, Lemma A.1)",
          out);
    }
  }
}

// --------------------------------------------------------------------------
// opx-dispatch
// --------------------------------------------------------------------------

namespace {

// Splits the top-level comma-separated alternatives of `std::variant<...>`
// starting at the '<' token; each alternative is the joined identifier chain
// (e.g. "omni::PaxosMessage").
std::vector<std::string> VariantAlternatives(const std::vector<Tok>& toks, size_t lt) {
  std::vector<std::string> alts;
  std::string cur;
  int depth = 0;
  for (size_t i = lt; i < toks.size(); ++i) {
    const Tok& tok = toks[i];
    if (tok.Is("<")) {
      ++depth;
      if (depth == 1) {
        continue;
      }
    } else if (tok.Is(">")) {
      --depth;
      if (depth == 0) {
        break;
      }
    } else if (tok.Is(",") && depth == 1) {
      if (!cur.empty()) {
        alts.push_back(cur);
      }
      cur.clear();
      continue;
    }
    cur += tok.text;
  }
  if (!cur.empty()) {
    alts.push_back(cur);
  }
  return alts;
}

std::string LastComponent(const std::string& qualified) {
  const size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

// Collects the type names this file dispatches on: the (unqualified) final
// template argument of is_same_v<T, X>, get_if<X>, holds_alternative<X>, and
// std::get<X>.
void CollectDispatchedTypes(const std::vector<Tok>& toks, std::set<std::string>* out) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !toks[i + 1].Is("<")) {
      continue;
    }
    const std::string& id = toks[i].text;
    const bool std_qualified = i >= 2 && toks[i - 1].Is("::") && toks[i - 2].IsIdent("std");
    const bool eligible = id == "is_same_v" || id == "get_if" ||
                          id == "holds_alternative" || (id == "get" && std_qualified);
    if (!eligible) {
      continue;
    }
    const size_t gt = MatchForward(toks, i + 1, "<", ">");
    if (gt >= toks.size()) {
      continue;
    }
    // Last identifier of the template-argument list, unqualified.
    for (size_t j = gt; j > i + 1; --j) {
      if (toks[j - 1].kind == TokKind::kIdent) {
        out->insert(toks[j - 1].text);
        break;
      }
    }
  }
}

}  // namespace

void CheckDispatch(const AnalyzerConfig& cfg, FileSet& files, std::vector<Finding>* out,
                   int* nfiles, std::vector<std::string>* errors) {
  static const char* kCheck = "opx-dispatch";
  std::set<std::string> counted;
  for (const VariantRule& rule : cfg.variants) {
    const SourceFile* header = files.Get(rule.header);
    if (header == nullptr) {
      errors->push_back("opx-dispatch: cannot read " + rule.header);
      continue;
    }
    if (counted.insert(rule.header).second) {
      ++*nfiles;
    }
    // `using Name = std::variant<...>;`
    std::vector<std::string> alts;
    int using_line = 0;
    const std::vector<Tok>& t = header->toks;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].IsIdent("using") && t[i + 1].IsIdent(rule.name) && t[i + 2].Is("=")) {
        for (size_t j = i + 3; j < t.size() && !t[j].Is(";"); ++j) {
          if (t[j].IsIdent("variant") && j + 1 < t.size() && t[j + 1].Is("<")) {
            alts = VariantAlternatives(t, j + 1);
            using_line = t[i].line;
            break;
          }
        }
        break;
      }
    }
    if (alts.empty()) {
      errors->push_back("opx-dispatch: no `using " + rule.name +
                        " = std::variant<...>;` in " + rule.header);
      continue;
    }

    std::set<std::string> dispatched;
    bool ok = true;
    for (const std::string& df : rule.dispatch_files) {
      const SourceFile* dsf = files.Get(df);
      if (dsf == nullptr) {
        errors->push_back("opx-dispatch: cannot read " + df);
        ok = false;
        break;
      }
      if (counted.insert(df).second) {
        ++*nfiles;
      }
      CollectDispatchedTypes(dsf->toks, &dispatched);
    }
    if (!ok) {
      continue;
    }
    for (const std::string& alt : alts) {
      if (dispatched.count(LastComponent(alt)) > 0) {
        continue;
      }
      std::string where;
      for (const std::string& df : rule.dispatch_files) {
        where += (where.empty() ? "" : ", ") + df;
      }
      Add(*header, using_line, kCheck, rule.name + "::" + LastComponent(alt),
          rule.name + " alternative `" + alt + "` has no dispatch case in " + where +
              " — a get_if ladder silently drops unhandled wire messages",
          out);
    }
  }
}

// --------------------------------------------------------------------------
// opx-msg-init
// --------------------------------------------------------------------------

namespace {

// Scalar types whose uninitialized bytes would leak onto the wire.
bool IsScalarTypeName(const std::string& t) {
  static const std::set<std::string> kScalar = {
      "bool", "char", "short", "int", "long", "unsigned", "signed", "float",
      "double", "size_t", "ptrdiff_t", "int8_t", "int16_t", "int32_t", "int64_t",
      "uint8_t", "uint16_t", "uint32_t", "uint64_t", "uintptr_t", "intptr_t",
      // Repo-local scalar aliases (src/util/types.h).
      "LogIndex", "NodeId", "ConfigId", "Time"};
  return kScalar.count(t) > 0;
}

// Scans one struct body [open+1, close) for scalar fields without a default
// initializer; recurses into nested structs.
void ScanStructBody(const SourceFile& sf, const std::vector<Tok>& t, size_t open,
                    size_t close, const std::string& struct_name,
                    std::vector<Finding>* out) {
  size_t i = open + 1;
  while (i < close) {
    // Nested struct/class definition.
    if ((t[i].IsIdent("struct") || t[i].IsIdent("class")) && i + 2 < close &&
        t[i + 1].kind == TokKind::kIdent) {
      size_t j = i + 2;
      while (j < close && !t[j].Is("{") && !t[j].Is(";")) {
        ++j;
      }
      if (j < close && t[j].Is("{")) {
        const size_t nested_close = MatchForward(t, j, "{", "}");
        ScanStructBody(sf, t, j, nested_close, struct_name + "::" + t[i + 1].text, out);
        i = std::min(close, nested_close + 1);
        continue;
      }
      i = j + 1;
      continue;
    }
    // One member statement: walk to its ';', classifying on the way.
    const size_t stmt_begin = i;
    bool saw_eq = false;
    bool saw_brace_init = false;
    bool is_function = false;
    bool skip = t[i].IsIdent("friend") || t[i].IsIdent("using") ||
                t[i].IsIdent("typedef") || t[i].IsIdent("template") ||
                t[i].IsIdent("public") || t[i].IsIdent("private") ||
                t[i].IsIdent("protected") || t[i].IsIdent("operator") ||
                t[i].IsIdent("static") || t[i].IsIdent("enum");
    size_t last_ident_before_mark = 0;  // field-name candidate
    while (i < close) {
      if (t[i].Is(";")) {
        ++i;
        break;
      }
      if (t[i].Is("=") && !saw_eq && !is_function) {
        saw_eq = true;
      } else if (t[i].Is("(") && !saw_eq) {
        // Parentheses before '=': a member function / constructor.
        is_function = true;
        i = MatchForward(t, i, "(", ")");
      } else if (t[i].Is("{")) {
        if (is_function || skip) {
          // Function body: consume it; the statement ends here (no ';').
          i = MatchForward(t, i, "{", "}") + 1;
          break;
        }
        if (!saw_eq) {
          saw_brace_init = true;  // brace initializer `T x{...};`
        }
        i = MatchForward(t, i, "{", "}");
      } else if (t[i].Is("<")) {
        // Template arguments of the member type (e.g. std::vector<NodeId>).
        const size_t gt = MatchForward(t, i, "<", ">");
        if (gt < close) {
          i = gt;
        }
      } else if (t[i].kind == TokKind::kIdent && !saw_eq && !is_function) {
        last_ident_before_mark = i;
      }
      ++i;
    }
    if (skip || is_function || saw_eq || saw_brace_init ||
        last_ident_before_mark == 0) {
      continue;
    }
    // Uninitialized member: field name is the last identifier; its type is
    // everything before it. Only scalar (or pointer) types are hazards —
    // class types run their own default constructors.
    const size_t name_idx = last_ident_before_mark;
    if (name_idx == stmt_begin) {
      continue;  // lone identifier (macro invocation etc.)
    }
    // Classify the type from its tokens outside any template-argument list:
    // scalar iff every non-qualifier identifier there is a scalar name (so
    // `std::vector<uint64_t>` is a class type, `const uint64_t` a scalar).
    bool scalar = false;
    bool nonscalar = false;
    bool pointer = false;
    for (size_t j = stmt_begin; j < name_idx; ++j) {
      if (t[j].Is("<")) {
        const size_t gt = MatchForward(t, j, "<", ">");
        if (gt < name_idx) {
          j = gt;
          continue;
        }
      }
      if (t[j].Is("*")) {
        pointer = true;
      }
      if (t[j].kind != TokKind::kIdent) {
        continue;
      }
      const std::string& id = t[j].text;
      if (id == "const" || id == "volatile" || id == "mutable" ||
          (j + 1 < name_idx && t[j + 1].Is("::"))) {
        continue;  // qualifier or namespace component
      }
      (IsScalarTypeName(id) ? scalar : nonscalar) = true;
    }
    scalar = scalar && !nonscalar;
    if (scalar || pointer) {
      Add(sf, t[name_idx].line, "opx-msg-init",
          struct_name + "::" + t[name_idx].text,
          "wire-message field `" + struct_name + "::" + t[name_idx].text +
              "` has no default initializer — uninitialized " +
              (pointer ? "pointer" : "POD") +
              " bytes on the wire are a determinism and MSan-class hazard",
          out);
    }
  }
}

}  // namespace

void CheckMsgInit(const AnalyzerConfig& cfg, FileSet& files, std::vector<Finding>* out,
                  int* nfiles, std::vector<std::string>* errors) {
  for (const std::string& path : cfg.wire_headers) {
    const SourceFile* sf = files.Get(path);
    if (sf == nullptr) {
      errors->push_back("opx-msg-init: cannot read " + path);
      continue;
    }
    ++*nfiles;
    const std::vector<Tok>& t = sf->toks;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (!t[i].IsIdent("struct") || t[i + 1].kind != TokKind::kIdent) {
        continue;
      }
      // Top-level definitions only (forward declarations have ';' first).
      size_t j = i + 2;
      while (j < t.size() && !t[j].Is("{") && !t[j].Is(";")) {
        ++j;
      }
      if (j >= t.size() || t[j].Is(";")) {
        continue;
      }
      const size_t close = MatchForward(t, j, "{", "}");
      if (close >= t.size()) {
        continue;
      }
      ScanStructBody(*sf, t, j, close, t[i + 1].text, out);
      i = close;
    }
  }
}

// --------------------------------------------------------------------------
// opx-audit-hook
// --------------------------------------------------------------------------

void CheckAuditHook(const AnalyzerConfig& cfg, FileSet& files, std::vector<Finding>* out,
                    int* nfiles, std::vector<std::string>* errors) {
  static const char* kCheck = "opx-audit-hook";
  for (const AuditRule& rule : cfg.audit) {
    const SourceFile* sf = files.Get(rule.file);
    if (sf == nullptr) {
      errors->push_back("opx-audit-hook: cannot read " + rule.file);
      continue;
    }
    ++*nfiles;
    std::set<std::string> idents;
    bool has_check_macro = false;
    for (const Tok& tok : sf->toks) {
      if (tok.kind != TokKind::kIdent) {
        continue;
      }
      idents.insert(tok.text);
      if (tok.text.rfind("OPX_CHECK", 0) == 0 || tok.text.rfind("OPX_DCHECK", 0) == 0) {
        has_check_macro = true;
      }
    }
    for (const std::string& req : rule.required) {
      if (idents.count(req) == 0) {
        Add(*sf, 1, kCheck, req,
            rule.file + " does not reference `" + req +
                "` — protocol state must stay visible to the PR 1 cross-replica "
                "auditor (AuditView snapshot per event)",
            out);
      }
    }
    if (rule.require_check_macro && !has_check_macro) {
      Add(*sf, 1, kCheck, "OPX_CHECK",
          rule.file + " contains no OPX_CHECK/OPX_DCHECK assertion — protocol "
          "entry points must keep the invariant-assertion layer live",
          out);
    }
  }
}

// --------------------------------------------------------------------------
// opx-obs-hook
// --------------------------------------------------------------------------

void CheckObsHook(const AnalyzerConfig& cfg, FileSet& files, std::vector<Finding>* out,
                  int* nfiles, std::vector<std::string>* errors) {
  static const char* kCheck = "opx-obs-hook";
  for (const ObsRule& rule : cfg.obs) {
    const SourceFile* sf = files.Get(rule.file);
    if (sf == nullptr) {
      errors->push_back("opx-obs-hook: cannot read " + rule.file);
      continue;
    }
    ++*nfiles;
    std::set<std::string> idents;
    for (const Tok& tok : sf->toks) {
      if (tok.kind == TokKind::kIdent) {
        idents.insert(tok.text);
      }
    }
    for (const std::string& req : rule.required) {
      if (idents.count(req) == 0) {
        Add(*sf, 1, kCheck, req,
            rule.file + " does not reference `" + req +
                "` — observable protocol transitions must flow through the "
                "obs::ObsSink trace recorder so the trace-oracle tests stay "
                "non-vacuous (DESIGN.md §12)",
            out);
      }
    }
  }
}

// --------------------------------------------------------------------------
// opx-ballot-guard
// --------------------------------------------------------------------------

namespace {

// Guard classification for one mutation/call site.
enum class GuardStatus { kNone, kWrongDirection, kGood };

// Comparison operators after tokenizer merging; direction is evaluated with
// the message round normalized to the left-hand side.
enum class CmpOp { kLt, kGt, kLe, kGe, kEq, kNe, kNone };

CmpOp ParseCmp(const Tok& t) {
  if (t.Is("<")) return CmpOp::kLt;
  if (t.Is(">")) return CmpOp::kGt;
  if (t.Is("<=")) return CmpOp::kLe;
  if (t.Is(">=")) return CmpOp::kGe;
  if (t.Is("==")) return CmpOp::kEq;
  if (t.Is("!=")) return CmpOp::kNe;
  return CmpOp::kNone;
}

CmpOp MirrorCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;
  }
}

CmpOp NegateCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLe;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGe: return CmpOp::kLt;
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
    default: return op;
  }
}

// One analyzed function of a ballot-guard rule file.
struct BgFn {
  const FunctionDef* def = nullptr;
  Cfg cfg;
  std::unique_ptr<GuardIndex> guards;
  std::set<std::string> msg_bases;  // params + get_if-bound aliases
  // Direct state mutations: token index -> what was mutated.
  std::vector<std::pair<size_t, std::string>> mutations;
  // Calls to same-file functions: token index -> callee name.
  std::vector<std::pair<size_t, std::string>> calls;
  bool unguarded_summary = false;  // may mutate state with no round guard
};

// Does [r) mention the message round: a base used bare, or base.field /
// base->field with a configured round field?
bool SideHasMsgRound(const std::vector<Tok>& t, TokRange r,
                     const std::set<std::string>& bases,
                     const std::vector<std::string>& round_fields) {
  for (size_t i = r.begin; i < r.end; ++i) {
    if (t[i].kind != TokKind::kIdent || bases.count(t[i].text) == 0) {
      continue;
    }
    if (i > r.begin && (t[i - 1].Is(".") || t[i - 1].Is("->") || t[i - 1].Is("::"))) {
      continue;  // something.base is not the parameter
    }
    if (i + 2 < r.end && (t[i + 1].Is(".") || t[i + 1].Is("->"))) {
      if (Contains(round_fields, t[i + 2].text)) {
        return true;
      }
      continue;  // base.other_field — keep scanning
    }
    return true;  // bare use (e.g. a Ballot parameter compared whole)
  }
  return false;
}

bool SideHasOwnRound(const std::vector<Tok>& t, TokRange r,
                     const std::vector<std::string>& state_rounds) {
  for (size_t i = r.begin; i < r.end; ++i) {
    if (t[i].kind == TokKind::kIdent && Contains(state_rounds, t[i].text)) {
      return true;
    }
  }
  return false;
}

// Locates the one top-level comparison of [r); `<` that opens a balanced
// template-argument list is skipped.
size_t TopLevelCmp(const std::vector<Tok>& t, TokRange r) {
  int depth = 0;
  for (size_t i = r.begin; i < r.end; ++i) {
    if (t[i].Is("(") || t[i].Is("[") || t[i].Is("{")) {
      ++depth;
    } else if (t[i].Is(")") || t[i].Is("]") || t[i].Is("}")) {
      --depth;
    } else if (depth == 0 && ParseCmp(t[i]) != CmpOp::kNone) {
      if (t[i].Is("<")) {
        const size_t gt = MatchForward(t, i, "<", ">");
        if (gt < r.end) {
          i = gt;  // template arguments, not a comparison
          continue;
        }
      }
      return i;
    }
  }
  return t.size();
}

// Classifies one *atomic* (no top-level &&/||) condition range.
GuardStatus ClassifyAtomic(const std::vector<Tok>& t, TokRange r, bool polarity,
                           const BgFn& fn, const BallotGuardRule& rule) {
  const size_t cmp = TopLevelCmp(t, r);
  if (cmp >= r.end) {
    return GuardStatus::kNone;
  }
  CmpOp op = ParseCmp(t[cmp]);
  const TokRange lhs{r.begin, cmp};
  const TokRange rhs{cmp + 1, r.end};
  const bool msg_l = SideHasMsgRound(t, lhs, fn.msg_bases, rule.round_fields);
  const bool msg_r = SideHasMsgRound(t, rhs, fn.msg_bases, rule.round_fields);
  const bool own_l = SideHasOwnRound(t, lhs, rule.state_rounds);
  const bool own_r = SideHasOwnRound(t, rhs, rule.state_rounds);
  if (msg_l && own_r && !msg_r) {
    // msg OP own — as written.
  } else if (msg_r && own_l && !msg_l) {
    op = MirrorCmp(op);  // own OP msg — normalize msg to the left
  } else {
    return GuardStatus::kNone;
  }
  if (!polarity) {
    op = NegateCmp(op);
  }
  switch (op) {
    case CmpOp::kGt:
    case CmpOp::kGe:
    case CmpOp::kEq:
      return GuardStatus::kGood;
    case CmpOp::kLt:
    case CmpOp::kLe:
      return GuardStatus::kWrongDirection;
    default:
      return GuardStatus::kNone;  // != accepts arbitrarily stale rounds
  }
}

// Splits [r) at top-level occurrences of `op`.
std::vector<TokRange> SplitAt(const std::vector<Tok>& t, TokRange r, const char* op) {
  std::vector<TokRange> parts;
  int depth = 0;
  size_t begin = r.begin;
  for (size_t i = r.begin; i < r.end; ++i) {
    if (t[i].Is("(") || t[i].Is("[") || t[i].Is("{")) {
      ++depth;
    } else if (t[i].Is(")") || t[i].Is("]") || t[i].Is("}")) {
      --depth;
    } else if (depth == 0 && t[i].Is(op)) {
      parts.push_back({begin, i});
      begin = i + 1;
    }
  }
  parts.push_back({begin, r.end});
  return parts;
}

// Classifies one normalized guard fact. A disjunction known true guards the
// mutation only when *every* disjunct pins the round (each disjunct may be a
// conjunction, where one good conjunct suffices).
GuardStatus ClassifyFact(const std::vector<Tok>& t, const GuardFact& fact,
                         const BgFn& fn, const BallotGuardRule& rule) {
  const std::vector<TokRange> disjuncts =
      fact.polarity ? SplitAt(t, fact.cond, "||")
                    : std::vector<TokRange>{fact.cond};
  bool all_good = true;
  bool any_wrong = false;
  bool any_classified = false;
  for (const TokRange& d : disjuncts) {
    GuardStatus best = GuardStatus::kNone;
    for (const TokRange& c :
         fact.polarity ? SplitAt(t, d, "&&") : std::vector<TokRange>{d}) {
      TokRange atom = c;
      bool pol = fact.polarity;
      // Strip redundant parens / leading ! that survived NormalizeFact
      // because they wrap a single atom.
      while (atom.end - atom.begin >= 2 && t[atom.begin].Is("(") &&
             MatchForward(t, atom.begin, "(", ")") == atom.end - 1) {
        ++atom.begin;
        --atom.end;
      }
      if (!atom.Empty() && t[atom.begin].Is("!")) {
        pol = !pol;
        ++atom.begin;
        while (atom.end - atom.begin >= 2 && t[atom.begin].Is("(") &&
               MatchForward(t, atom.begin, "(", ")") == atom.end - 1) {
          ++atom.begin;
          --atom.end;
        }
      }
      const GuardStatus s = ClassifyAtomic(t, atom, pol, fn, rule);
      if (s == GuardStatus::kGood) {
        best = GuardStatus::kGood;
        break;
      }
      if (s == GuardStatus::kWrongDirection) {
        best = GuardStatus::kWrongDirection;
      }
    }
    if (best != GuardStatus::kNone) {
      any_classified = true;
    }
    if (best != GuardStatus::kGood) {
      all_good = false;
    }
    if (best == GuardStatus::kWrongDirection) {
      any_wrong = true;
    }
  }
  if (all_good && any_classified) {
    return GuardStatus::kGood;
  }
  return any_wrong ? GuardStatus::kWrongDirection : GuardStatus::kNone;
}

// The strongest guard dominating token `i` of `fn`.
GuardStatus SiteStatus(const std::vector<Tok>& t, const BgFn& fn, size_t i,
                       const BallotGuardRule& rule) {
  GuardStatus best = GuardStatus::kNone;
  for (const GuardFact& raw : fn.guards->FactsAtToken(i)) {
    for (const GuardFact& fact : NormalizeFact(t, raw)) {
      const GuardStatus s = ClassifyFact(t, fact, fn, rule);
      if (s == GuardStatus::kGood) {
        return GuardStatus::kGood;
      }
      if (s == GuardStatus::kWrongDirection) {
        best = GuardStatus::kWrongDirection;
      }
    }
  }
  return best;
}

bool IsMutatingContainerOp(const std::string& id) {
  static const std::set<std::string> kOps = {
      "push_back", "pop_back", "emplace_back", "emplace", "insert", "erase",
      "clear",     "resize",   "assign",       "push",    "pop"};
  return kOps.count(id) > 0;
}

}  // namespace

void CheckBallotGuard(const AnalyzerConfig& cfg, FileSet& files,
                      std::vector<Finding>* out, int* nfiles,
                      std::vector<std::string>* errors) {
  static const char* kCheck = "opx-ballot-guard";
  for (const BallotGuardRule& rule : cfg.ballot_guards) {
    const SourceFile* sf = files.Get(rule.file);
    if (sf == nullptr) {
      errors->push_back("opx-ballot-guard: cannot read " + rule.file);
      continue;
    }
    ++*nfiles;
    const std::vector<Tok>& t = sf->toks;
    std::vector<FunctionDef> defs = ParseFunctions(*sf);
    std::set<std::string> fn_names;
    for (const FunctionDef& d : defs) {
      fn_names.insert(d.name);
    }

    std::vector<BgFn> fns(defs.size());
    std::map<std::string, std::vector<size_t>> by_name;
    for (size_t fi = 0; fi < defs.size(); ++fi) {
      BgFn& fn = fns[fi];
      fn.def = &defs[fi];
      fn.cfg = Cfg::Build(*sf, defs[fi]);
      fn.guards = std::make_unique<GuardIndex>(fn.cfg);
      by_name[defs[fi].name].push_back(fi);
      for (const Param& p : defs[fi].params) {
        if (!p.name.empty()) {
          fn.msg_bases.insert(p.name);
        }
      }
      // get_if-bound aliases: `auto* alias = std::get_if<T>(&msg)`.
      for (size_t i = defs[fi].body_open; i < defs[fi].body_close; ++i) {
        if (!t[i].IsIdent("get_if")) {
          continue;
        }
        size_t j = i;
        if (j >= 2 && t[j - 1].Is("::") && t[j - 2].IsIdent("std")) {
          j -= 2;
        }
        if (j >= 2 && t[j - 1].Is("=") && t[j - 2].kind == TokKind::kIdent) {
          fn.msg_bases.insert(t[j - 2].text);
        }
      }
      // Direct mutations and same-file call sites.
      for (size_t i = defs[fi].body_open + 1; i < defs[fi].body_close; ++i) {
        if (t[i].kind != TokKind::kIdent) {
          continue;
        }
        const std::string& id = t[i].text;
        const bool member_of_other =
            i > 0 && (t[i - 1].Is(".") ||
                      (t[i - 1].Is("->") && !(i >= 2 && t[i - 2].IsIdent("this"))));
        if (Contains(rule.mutators, id) && i + 1 < t.size() && t[i + 1].Is("(")) {
          fn.mutations.push_back({i, id});
          continue;
        }
        if (Contains(rule.state_members, id) && !member_of_other) {
          const bool assigned =
              (i + 1 < t.size() &&
               (t[i + 1].Is("=") ||
                ((t[i + 1].Is("+") || t[i + 1].Is("-") || t[i + 1].Is("|") ||
                  t[i + 1].Is("&") || t[i + 1].Is("^")) &&
                 i + 2 < t.size() && t[i + 2].Is("=")))) ||
              (i + 2 < t.size() && t[i + 1].Is("+") && t[i + 2].Is("+")) ||
              (i + 2 < t.size() && t[i + 1].Is("-") && t[i + 2].Is("-")) ||
              (i >= 2 && t[i - 1].Is("+") && t[i - 2].Is("+")) ||
              (i >= 2 && t[i - 1].Is("-") && t[i - 2].Is("-")) ||
              (i + 3 < t.size() && (t[i + 1].Is(".") || t[i + 1].Is("->")) &&
               IsMutatingContainerOp(t[i + 2].text) && t[i + 3].Is("("));
          if (assigned) {
            fn.mutations.push_back({i, id});
          }
          continue;
        }
        if (fn_names.count(id) > 0 && !member_of_other && i + 1 < t.size() &&
            t[i + 1].Is("(") && id != defs[fi].name) {
          fn.calls.push_back({i, id});
        }
      }
    }

    // Summary fixpoint: a function is unguarded when it has a direct
    // mutation, or a call to an unguarded function, not dominated by a
    // good-direction round guard.
    for (BgFn& fn : fns) {
      for (const auto& [tok, what] : fn.mutations) {
        if (SiteStatus(t, fn, tok, rule) != GuardStatus::kGood) {
          fn.unguarded_summary = true;
          break;
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (BgFn& fn : fns) {
        if (fn.unguarded_summary) {
          continue;
        }
        for (const auto& [tok, callee] : fn.calls) {
          bool callee_unguarded = false;
          for (const size_t ci : by_name[callee]) {
            callee_unguarded = callee_unguarded || fns[ci].unguarded_summary;
          }
          if (callee_unguarded && SiteStatus(t, fn, tok, rule) != GuardStatus::kGood) {
            fn.unguarded_summary = true;
            changed = true;
            break;
          }
        }
      }
    }

    // Findings: handlers only (Handle* naming convention), per bad site.
    for (const BgFn& fn : fns) {
      const std::string& name = fn.def->name;
      if (name.rfind("Handle", 0) != 0 || Contains(rule.exempt, name)) {
        continue;
      }
      std::map<std::string, int> ordinals;
      for (const auto& [tok, what] : fn.mutations) {
        const GuardStatus s = SiteStatus(t, fn, tok, rule);
        const std::string key =
            OrdinalKey(name + "/" + what, ordinals[name + "/" + what]++);
        if (s == GuardStatus::kGood) {
          continue;
        }
        Add(*sf, t[tok].line, kCheck, key,
            s == GuardStatus::kWrongDirection
                ? name + " mutates `" + what + "` under a wrong-direction round "
                      "guard (accepts msg round < own round) — a stale ballot "
                      "could overwrite newer promises (Appendix A, single "
                      "leader per round)"
                : name + " mutates `" + what + "` without a dominating "
                      "round/ballot comparison against the message's round — "
                      "a stale or duplicate message can roll state backwards "
                      "(Appendix A, promise monotonicity)",
            out);
      }
      for (const auto& [tok, callee] : fn.calls) {
        bool callee_unguarded = false;
        for (const size_t ci : by_name[callee]) {
          callee_unguarded = callee_unguarded || fns[ci].unguarded_summary;
        }
        if (!callee_unguarded) {
          continue;
        }
        const GuardStatus s = SiteStatus(t, fn, tok, rule);
        if (s == GuardStatus::kGood) {
          continue;
        }
        const std::string key =
            OrdinalKey(name + "/" + callee, ordinals[name + "/" + callee]++);
        Add(*sf, t[tok].line, kCheck, key,
            name + " calls `" + callee + "` (which mutates round state) " +
                (s == GuardStatus::kWrongDirection
                     ? "under a wrong-direction round guard"
                     : "without a dominating round/ballot guard") +
                " — the callee inherits no protection from this call site "
                "(one-level summary, DESIGN.md §13)",
            out);
      }
    }
  }
}

// --------------------------------------------------------------------------
// opx-quorum-arith
// --------------------------------------------------------------------------

namespace {

// Index of the matching opener for the closer at `close`, scanning backward.
size_t MatchBackward(const std::vector<Tok>& toks, size_t close, const char* opener,
                     const char* closer) {
  int depth = 0;
  for (size_t i = close + 1; i > 0; --i) {
    const Tok& t = toks[i - 1];
    if (t.Is(closer)) {
      ++depth;
    } else if (t.Is(opener)) {
      if (--depth == 0) {
        return i - 1;
      }
    }
  }
  return toks.size();
}

}  // namespace

void CheckQuorumArith(const AnalyzerConfig& cfg, FileSet& files,
                      std::vector<Finding>* out, int* nfiles,
                      std::vector<std::string>* errors) {
  static const char* kCheck = "opx-quorum-arith";
  (void)errors;
  const QuorumConfig& qc = cfg.quorum;
  if (qc.dirs.empty()) {
    return;
  }
  std::set<std::string> seen;
  std::vector<std::string> paths;
  for (const std::string& d : qc.dirs) {
    for (std::string& p : files.ListDir(d)) {
      if (seen.insert(p).second) {
        paths.push_back(std::move(p));
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  for (const std::string& path : paths) {
    if (path == qc.helper_file) {
      continue;  // the one sanctioned implementation
    }
    const SourceFile* sf = files.Get(path);
    if (sf == nullptr) {
      continue;
    }
    ++*nfiles;
    const std::vector<Tok>& t = sf->toks;
    int ordinal = 0;
    for (size_t i = 1; i + 1 < t.size(); ++i) {
      if (!t[i].Is("/") || !(t[i + 1].kind == TokKind::kNumber && t[i + 1].Is("2"))) {
        continue;
      }
      // Reconstruct the dividend: a parenthesized group or a call/member
      // chain ending just before the '/'.
      size_t div_begin = i - 1;
      if (t[i - 1].Is(")")) {
        const size_t open = MatchBackward(t, i - 1, "(", ")");
        if (open >= t.size()) {
          continue;
        }
        div_begin = open;
        // Include the callee chain: `cluster.ClusterSize()`.
        while (div_begin > 0 &&
               (t[div_begin - 1].kind == TokKind::kIdent ||
                t[div_begin - 1].Is(".") || t[div_begin - 1].Is("->") ||
                t[div_begin - 1].Is("::"))) {
          --div_begin;
        }
      } else {
        while (div_begin > 0 &&
               (t[div_begin - 1].kind == TokKind::kIdent ||
                t[div_begin - 1].kind == TokKind::kNumber ||
                t[div_begin - 1].Is(".") || t[div_begin - 1].Is("->") ||
                t[div_begin - 1].Is("::"))) {
          --div_begin;
        }
      }
      // Is the dividend a cluster-size expression?
      bool size_expr = false;
      for (size_t j = div_begin; j < i; ++j) {
        if (t[j].kind != TokKind::kIdent) {
          continue;
        }
        if (Contains(qc.size_calls, t[j].text) && j + 1 < i && t[j + 1].Is("(")) {
          size_expr = true;
          break;
        }
        if (Contains(qc.size_idents, t[j].text)) {
          size_expr = true;
          break;
        }
      }
      if (!size_expr) {
        continue;
      }
      const bool plus_one_inside =  // `(n + 1) / 2`
          i >= 3 && t[i - 1].Is(")") && t[i - 2].Is("1") && t[i - 3].Is("+");
      const bool plus_one_after =  // `n / 2 + 1`
          i + 3 < t.size() && t[i + 2].Is("+") && t[i + 3].Is("1");
      std::string message;
      if (plus_one_inside) {
        message =
            "hand-rolled `(n + 1) / 2` is NOT a majority for even n (n=4 "
            "gives 2) — use util::MajorityOf (n/2 + 1), the one audited "
            "quorum helper";
      } else if (plus_one_after) {
        message =
            "hand-rolled majority `n / 2 + 1` — route quorum arithmetic "
            "through util::MajorityOf so every protocol shares the one "
            "audited formula (Paxos and Raft quorums must agree)";
      } else {
        message =
            "`n / 2` over a cluster size is a minority-vs-majority off-by-one "
            "hazard — use util::MajorityOf / util::MaxMinorityOf instead of "
            "raw division";
      }
      Add(*sf, t[i].line, kCheck, OrdinalKey("div2", ordinal++), message, out);
    }
  }
}

// --------------------------------------------------------------------------
// opx-blocking-in-loop
// --------------------------------------------------------------------------

namespace {

bool IsBlockingName(const std::string& id) {
  static const std::set<std::string> kBlocking = {
      "read",     "write",    "pread",     "pwrite",    "connect",   "accept",
      "accept4",  "recv",     "recvfrom",  "recvmsg",   "send",      "sendto",
      "sendmsg",  "fsync",    "fdatasync", "sleep",     "usleep",    "nanosleep",
      "sleep_for", "sleep_until", "select", "pselect",  "poll",      "ppoll",
      "epoll_wait", "writev", "readv"};
  return kBlocking.count(id) > 0;
}

// A call of a blocking function at token `i`: free or ::-qualified (member
// calls like `buf.read(...)` are some other read).
bool IsBlockingCallSite(const std::vector<Tok>& t, size_t i) {
  if (t[i].kind != TokKind::kIdent || !IsBlockingName(t[i].text) ||
      i + 1 >= t.size() || !t[i + 1].Is("(")) {
    return false;
  }
  if (i == 0) {
    return true;
  }
  if (t[i - 1].Is(".") || t[i - 1].Is("->")) {
    return false;
  }
  if (t[i - 1].Is("::")) {
    // `::read` (global) and `std::this_thread::sleep_for` are the real
    // syscalls; `SomeClass::read` is not.
    if (i == 1 || t[i - 2].kind != TokKind::kIdent) {
      return true;
    }
    return t[i - 2].IsIdent("std") || t[i - 2].IsIdent("this_thread");
  }
  return true;
}

}  // namespace

void CheckBlockingInLoop(const AnalyzerConfig& cfg, FileSet& files,
                         std::vector<Finding>* out, int* nfiles,
                         std::vector<std::string>* errors) {
  static const char* kCheck = "opx-blocking-in-loop";
  (void)errors;
  const BlockingConfig& bc = cfg.blocking;

  // Pass 1: deterministic directories — blocking syscalls banned outright
  // (Simulator callbacks run there; one blocked callback stalls virtual
  // time for the whole cluster).
  std::set<std::string> seen;
  std::vector<std::string> det_paths;
  for (const std::string& d : bc.det_dirs) {
    for (std::string& p : files.ListDir(d)) {
      if (seen.insert(p).second) {
        det_paths.push_back(std::move(p));
      }
    }
  }
  std::sort(det_paths.begin(), det_paths.end());
  for (const std::string& path : det_paths) {
    const SourceFile* sf = files.Get(path);
    if (sf == nullptr) {
      continue;
    }
    ++*nfiles;
    const std::vector<Tok>& t = sf->toks;
    std::map<std::string, int> ordinals;
    for (size_t i = 0; i < t.size(); ++i) {
      if (IsBlockingCallSite(t, i)) {
        Add(*sf, t[i].line, kCheck, OrdinalKey(t[i].text, ordinals[t[i].text]++),
            "blocking call `" + t[i].text + "` in deterministic code — "
            "Simulator callbacks must never block (one stalled callback "
            "freezes virtual time for the whole cluster)",
            out);
      }
    }
  }

  // Pass 2: event-loop scope — functions reachable from the configured
  // entry points, via name-based call summaries across every file in
  // event_dirs.
  if (bc.event_dirs.empty() || bc.entries.empty()) {
    return;
  }
  struct EvFn {
    std::string file;
    const SourceFile* sf = nullptr;
    FunctionDef def;
    std::vector<size_t> blocking;       // token indices of blocking calls
    std::vector<std::string> callees;   // names of called event-scope fns
  };
  std::vector<EvFn> ev;
  std::map<std::string, std::vector<size_t>> ev_by_name;
  std::set<std::string> ev_files_seen;
  std::vector<std::string> ev_paths;
  for (const std::string& d : bc.event_dirs) {
    for (std::string& p : files.ListDir(d)) {
      if (ev_files_seen.insert(p).second) {
        ev_paths.push_back(std::move(p));
      }
    }
  }
  std::sort(ev_paths.begin(), ev_paths.end());
  std::set<std::string> all_fn_names;
  std::vector<std::pair<const SourceFile*, std::vector<FunctionDef>>> parsed;
  for (const std::string& path : ev_paths) {
    const SourceFile* sf = files.Get(path);
    if (sf == nullptr) {
      continue;
    }
    if (seen.insert(path).second) {
      ++*nfiles;
    }
    parsed.emplace_back(sf, ParseFunctions(*sf));
    for (const FunctionDef& d : parsed.back().second) {
      all_fn_names.insert(d.name);
    }
  }
  for (auto& [sf, defs] : parsed) {
    for (FunctionDef& d : defs) {
      EvFn fn;
      fn.file = sf->path;
      fn.sf = sf;
      const std::vector<Tok>& t = sf->toks;
      for (size_t i = d.body_open + 1; i < d.body_close; ++i) {
        if (IsBlockingCallSite(t, i)) {
          fn.blocking.push_back(i);
        } else if (t[i].kind == TokKind::kIdent && all_fn_names.count(t[i].text) > 0 &&
                   i + 1 < t.size() && t[i + 1].Is("(") && t[i].text != d.name &&
                   !(i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->")))) {
          // Only unqualified (same-object or free) calls: `obj->Append(...)`
          // is a call into *some other* class whose name happens to collide.
          fn.callees.push_back(t[i].text);
        }
      }
      fn.def = std::move(d);
      ev_by_name[fn.def.name].push_back(ev.size());
      ev.push_back(std::move(fn));
    }
  }

  // BFS from the entry points, keeping one witness path per function.
  std::map<size_t, std::string> via;  // fn index -> "Entry -> a -> b"
  std::vector<size_t> queue;
  for (const BlockingConfig::EntryPoint& ep : bc.entries) {
    for (size_t fi = 0; fi < ev.size(); ++fi) {
      if (ev[fi].file == ep.file && ev[fi].def.name == ep.function &&
          via.emplace(fi, ev[fi].def.Display()).second) {
        queue.push_back(fi);
      }
    }
  }
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const size_t fi = queue[qi];
    for (const std::string& callee : ev[fi].callees) {
      for (const size_t ci : ev_by_name[callee]) {
        if (via.emplace(ci, via[fi] + " -> " + ev[ci].def.Display()).second) {
          queue.push_back(ci);
        }
      }
    }
  }

  for (const auto& [fi, path] : via) {
    const EvFn& fn = ev[fi];
    const std::vector<Tok>& t = fn.sf->toks;
    std::map<std::string, int> ordinals;
    for (const size_t i : fn.blocking) {
      const std::string base = fn.def.name + "/" + t[i].text;
      Add(*fn.sf, t[i].line, kCheck, OrdinalKey(base, ordinals[base]++),
          "blocking call `" + t[i].text + "` reachable from event-loop entry "
          "point (" + path + ") — one blocked handler stalls every connection "
          "the loop serves; the epoll rewrite (ROADMAP item 4) requires "
          "non-blocking I/O throughout",
          out);
    }
  }
}

// --------------------------------------------------------------------------
// opx-span-escape
// --------------------------------------------------------------------------

namespace {

// Is token `i` (an identifier) a member per the trailing-underscore
// convention, or written through `this->`?
bool IsMemberName(const std::vector<Tok>& t, size_t i) {
  if (!t[i].text.empty() && t[i].text.back() == '_') {
    return true;
  }
  return i >= 2 && t[i - 1].Is("->") && t[i - 2].IsIdent("this");
}

// Whether [begin, end) is exactly `name` or `std::move(name)`.
bool IsWholeParam(const std::vector<Tok>& t, size_t begin, size_t end,
                  const std::string& name) {
  if (end == begin + 1) {
    return t[begin].IsIdent(name);
  }
  if (end == begin + 6 && t[begin].IsIdent("std") && t[begin + 1].Is("::") &&
      t[begin + 2].IsIdent("move") && t[begin + 3].Is("(") &&
      t[begin + 4].IsIdent(name) && t[begin + 5].Is(")")) {
    return true;
  }
  if (end == begin + 4 && t[begin].IsIdent("move") && t[begin + 1].Is("(") &&
      t[begin + 2].IsIdent(name) && t[begin + 3].Is(")")) {
    return true;
  }
  return false;
}

}  // namespace

void CheckSpanEscape(const AnalyzerConfig& cfg, FileSet& files,
                     std::vector<Finding>* out, int* nfiles,
                     std::vector<std::string>* errors) {
  static const char* kCheck = "opx-span-escape";
  (void)errors;
  const SpanEscapeConfig& sc = cfg.span_escape;
  if (sc.dirs.empty()) {
    return;
  }
  std::set<std::string> seen;
  std::vector<std::string> paths;
  for (const std::string& d : sc.dirs) {
    for (std::string& p : files.ListDir(d)) {
      if (seen.insert(p).second) {
        paths.push_back(std::move(p));
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  for (const std::string& path : paths) {
    const SourceFile* sf = files.Get(path);
    if (sf == nullptr) {
      continue;
    }
    ++*nfiles;
    const std::vector<Tok>& t = sf->toks;
    std::map<std::string, int> ordinals;
    for (const FunctionDef& def : ParseFunctions(*sf)) {
      for (const Param& p : def.params) {
        if (p.name.empty()) {
          continue;
        }
        bool is_view = false;
        for (const std::string& vt : sc.view_types) {
          if (p.type.find(vt) != std::string::npos) {
            is_view = true;
            break;
          }
        }
        if (!is_view) {
          continue;
        }
        for (size_t i = def.body_open + 1; i + 1 < def.body_close; ++i) {
          if (t[i].kind != TokKind::kIdent) {
            continue;
          }
          // `member_ = param;` (optionally via std::move).
          if (IsMemberName(t, i) && t[i + 1].Is("=")) {
            size_t semi = i + 2;
            while (semi < def.body_close && !t[semi].Is(";")) {
              ++semi;
            }
            if (IsWholeParam(t, i + 2, semi, p.name)) {
              Add(*sf, t[i].line, kCheck,
                  OrdinalKey(def.name + "/" + p.name,
                             ordinals[def.name + "/" + p.name]++),
                  def.Display() + " stores view parameter `" + p.name + "` ("
                      + p.type + ") into member `" + t[i].text + "` — the view "
                      "outlives the call while its backing log segment may be "
                      "truncated or reallocated (copy the elements, or keep an "
                      "owning EntrySegment)",
                  out);
            }
            continue;
          }
          // `container_.push_back(param)` and friends.
          if (IsMemberName(t, i) && i + 3 < def.body_close &&
              (t[i + 1].Is(".") || t[i + 1].Is("->")) &&
              IsMutatingContainerOp(t[i + 2].text) && t[i + 3].Is("(")) {
            const size_t close = MatchForward(t, i + 3, "(", ")");
            if (close >= def.body_close) {
              continue;
            }
            // Any top-level argument that is the whole parameter.
            size_t arg_begin = i + 4;
            int depth = 0;
            bool flagged = false;
            for (size_t j = i + 4; j <= close && !flagged; ++j) {
              const bool top_comma = t[j].Is(",") && depth == 0;
              if (j == close || top_comma) {
                if (IsWholeParam(t, arg_begin, j, p.name)) {
                  Add(*sf, t[i].line, kCheck,
                      OrdinalKey(def.name + "/" + p.name,
                                 ordinals[def.name + "/" + p.name]++),
                      def.Display() + " stores view parameter `" + p.name +
                          "` into member container `" + t[i].text + "` via `" +
                          t[i + 2].text + "` — the stored view outlives the "
                          "call; copy the underlying elements instead "
                          "(AppendAll's element-insert is the good pattern)",
                      out);
                  flagged = true;
                }
                arg_begin = j + 1;
              } else if (t[j].Is("(") || t[j].Is("[") || t[j].Is("{")) {
                ++depth;
              } else if (t[j].Is(")") || t[j].Is("]") || t[j].Is("}")) {
                --depth;
              }
            }
          }
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// Driver.
// --------------------------------------------------------------------------

AnalysisResult RunAnalysis(const AnalyzerConfig& config) {
  AnalysisResult result;
  FileSet files(config.root);
  const auto wall0 = std::chrono::steady_clock::now();

  // Parallel preload: tokenize every file any check will touch up front,
  // with worker threads; the checks themselves then run single-threaded
  // against a warm cache, so finding order is identical to a serial run.
  {
    std::set<std::string> dirs;
    for (const std::string& d : config.determinism.dirs) dirs.insert(d);
    for (const std::string& d : config.determinism.function_dirs) dirs.insert(d);
    for (const std::string& d : config.quorum.dirs) dirs.insert(d);
    for (const std::string& d : config.blocking.det_dirs) dirs.insert(d);
    for (const std::string& d : config.blocking.event_dirs) dirs.insert(d);
    for (const std::string& d : config.span_escape.dirs) dirs.insert(d);
    for (const std::string& d : config.wire_taint.dirs) dirs.insert(d);
    for (const std::string& d : config.index_arith.dirs) dirs.insert(d);
    for (const std::string& d : config.ref_lifetime.dirs) dirs.insert(d);
    std::set<std::string> paths;
    for (const std::string& d : dirs) {
      for (std::string& p : files.ListDir(d)) {
        paths.insert(std::move(p));
      }
    }
    for (const VariantRule& v : config.variants) {
      paths.insert(v.header);
      paths.insert(v.dispatch_files.begin(), v.dispatch_files.end());
    }
    for (const HandlerRule& h : config.handlers) paths.insert(h.file);
    paths.insert(config.wire_headers.begin(), config.wire_headers.end());
    for (const AuditRule& a : config.audit) paths.insert(a.file);
    for (const ObsRule& o : config.obs) paths.insert(o.file);
    for (const BallotGuardRule& b : config.ballot_guards) paths.insert(b.file);
    const std::vector<std::string> todo(paths.begin(), paths.end());
    const unsigned hw = std::thread::hardware_concurrency();
    result.jobs = config.jobs > 0
                      ? config.jobs
                      : static_cast<int>(std::min(hw == 0 ? 1u : hw, 8u));
    const auto p0 = std::chrono::steady_clock::now();
    result.preloaded_files = files.Preload(todo, result.jobs);
    result.preload_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - p0)
                            .count();
  }

  struct Entry {
    const char* id;
    void (*run)(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int*,
                std::vector<std::string>*);
  };
  // CheckDeterminism has no error channel; adapt it.
  static const auto det = [](const AnalyzerConfig& c, FileSet& f, std::vector<Finding>* o,
                             int* n, std::vector<std::string>*) {
    CheckDeterminism(c, f, o, n);
  };
  const Entry entries[] = {
      {"opx-determinism", det},
      {"opx-persist-order", CheckPersistOrder},
      {"opx-dispatch", CheckDispatch},
      {"opx-msg-init", CheckMsgInit},
      {"opx-audit-hook", CheckAuditHook},
      {"opx-obs-hook", CheckObsHook},
      {"opx-ballot-guard", CheckBallotGuard},
      {"opx-quorum-arith", CheckQuorumArith},
      {"opx-blocking-in-loop", CheckBlockingInLoop},
      {"opx-span-escape", CheckSpanEscape},
      {"opx-wire-taint", CheckWireTaint},
      {"opx-index-arith", CheckIndexArith},
      {"opx-ref-lifetime", CheckRefLifetime},
  };

  for (const Entry& e : entries) {
    CheckStats stats;
    stats.check = e.id;
    std::vector<Finding> found;
    const auto t0 = std::chrono::steady_clock::now();
    e.run(config, files, &found, &stats.files, &result.errors);
    const auto t1 = std::chrono::steady_clock::now();
    stats.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats.findings = static_cast<int>(found.size());
    result.stats.push_back(std::move(stats));
    result.findings.insert(result.findings.end(), std::make_move_iterator(found.begin()),
                           std::make_move_iterator(found.end()));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check, a.key) <
                     std::tie(b.file, b.line, b.check, b.key);
            });
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall0)
                       .count();
  return result;
}

}  // namespace opx::analyze
