// The repo's own analyzer configuration: which directories are deterministic,
// which variants are wire formats, which handler functions must persist
// before replying, and which files must stay wired to the auditor.
//
// DESIGN.md §11 documents every rule and how to extend the tables.
#include <algorithm>
#include <filesystem>

#include "tools/analyze/analyzer.h"

namespace opx::analyze {

AnalyzerConfig DefaultConfig(const std::string& root) {
  AnalyzerConfig cfg;
  cfg.root = root;

  // --- opx-determinism ----------------------------------------------------
  // Everything replayed by the simulator or fingerprinted by the determinism
  // tests. src/util is exempt (it *implements* the sanctioned Rng/clock) and
  // src/net is the real-I/O boundary where wall clocks are legitimate.
  cfg.determinism.dirs = {"src/sim", "src/omnipaxos", "src/raft",
                          "src/multipaxos", "src/vr", "src/rsm"};
  cfg.determinism.function_dirs = cfg.determinism.dirs;

  // --- opx-dispatch (ported from the retired tools/lint_handlers.py) ------
  cfg.variants = {
      {"PaxosMessage", "src/omnipaxos/messages.h", {"src/omnipaxos/sequence_paxos.cc"}},
      {"BleMessage", "src/omnipaxos/messages.h", {"src/omnipaxos/ble.cc"}},
      {"OmniMessage", "src/omnipaxos/omni_paxos.h", {"src/omnipaxos/omni_paxos.cc"}},
      {"RaftMessage", "src/raft/messages.h", {"src/raft/raft.cc"}},
      {"MpxMessage", "src/multipaxos/messages.h", {"src/multipaxos/multipaxos.cc"}},
      {"VrMessage", "src/vr/vr_election.h", {"src/vr/vr_election.cc"}},
      {"VrWire", "src/vr/vr_replica.h", {"src/vr/vr_replica.h"}},
  };

  // --- opx-persist-order --------------------------------------------------
  // Sequence Paxos is the protocol whose Appendix-A proof this repo tracks;
  // each rule names the reply that advertises durable state and the Storage
  // mutators that must land first. (Raft's rejection replies reuse the
  // success message type, which makes a lexical before/after rule unsound
  // there — see DESIGN.md §11.)
  const std::string sp = "src/omnipaxos/sequence_paxos.cc";
  cfg.handlers = {
      {sp, "BecomeLeader", {"set_promised_round"}, {"Prepare"}, {"Emit"}},
      {sp, "HandlePrepare", {"set_promised_round"}, {"Promise"}, {"Emit"}},
      // Snapshot-install adoption on the new leader: the adopted log (suffix
      // append, or ResetToSnapshot when the winner compacted past us) and the
      // round raise must be durable before any AcceptSync ships it. Empty
      // ack_types: SendAcceptSyncTo builds and emits the AcceptSync itself.
      {sp,
       "CompletePreparePhase",
       {"ResetToSnapshot", "TruncateAndAppend", "AppendAll", "set_accepted_round"},
       {},
       {"SendAcceptSyncTo"}},
      {sp,
       "HandleAcceptSync",
       {"set_accepted_round", "TruncateAndAppend", "ResetToSnapshot"},
       {"Accepted"},
       {"Emit"}},
      {sp, "HandleAcceptDecide", {"AppendAll"}, {"Accepted"}, {"Emit"}},
  };

  // --- opx-msg-init -------------------------------------------------------
  // Every wire header: any file named messages.h / client_messages.h under
  // src/, discovered so new protocols are covered automatically.
  namespace fs = std::filesystem;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(fs::path(root) / "src", ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) {
      continue;
    }
    const std::string base = it->path().filename().string();
    if (base == "messages.h" || base == "client_messages.h") {
      cfg.wire_headers.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(cfg.wire_headers.begin(), cfg.wire_headers.end());

  // --- opx-audit-hook -----------------------------------------------------
  // Each protocol implementation must expose the AuditView snapshot the
  // cross-replica auditor consumes and keep OPX_CHECK-layer assertions live;
  // the simulated harness must actually run the auditor.
  cfg.audit = {
      {"src/omnipaxos/omni_paxos.cc", {"Audit", "AuditView"}, false},
      {"src/omnipaxos/sequence_paxos.cc", {}, true},
      {"src/raft/raft.cc", {"Audit", "AuditView"}, true},
      {"src/multipaxos/multipaxos.cc", {"Audit", "AuditView"}, true},
      {"src/vr/vr_replica.h", {"Audit", "AuditView"}, false},
      {"src/rsm/cluster_sim.h", {"SafetyAuditor", "Audit"}, false},
  };

  // --- opx-obs-hook -------------------------------------------------------
  // Every protocol handler and the simulated network must route observable
  // transitions through the DESIGN.md §12 trace recorder; the harness headers
  // that own the sink must also reference ObsSink itself. Without these the
  // trace-oracle conformance tests go silently vacuous.
  cfg.obs = {
      {"src/omnipaxos/ble.cc", {"OPX_TRACE"}},
      {"src/omnipaxos/sequence_paxos.cc", {"OPX_TRACE"}},
      {"src/raft/raft.cc", {"OPX_TRACE"}},
      {"src/multipaxos/multipaxos.cc", {"OPX_TRACE"}},
      {"src/vr/vr_election.cc", {"OPX_TRACE"}},
      {"src/sim/network.h", {"OPX_TRACE", "ObsSink"}},
      {"src/rsm/cluster_sim.h", {"OPX_TRACE", "ObsSink"}},
      {"src/rsm/omni_reconfig_sim.h", {"OPX_TRACE", "ObsSink"}},
  };

  // --- opx-ballot-guard ---------------------------------------------------
  // Per-protocol vocabulary for the CFG/dominance guard analysis (DESIGN.md
  // §13): which message fields carry rounds, which identifiers are the
  // replica's own round state, and which member writes / Storage mutators
  // must sit behind a good-direction comparison inside Handle* functions.
  cfg.ballot_guards = {
      {"src/omnipaxos/sequence_paxos.cc",
       /*round_fields=*/{"n"},
       /*state_rounds=*/{"promised_round", "accepted_round", "n_", "leader_ballot_"},
       /*mutators=*/
       {"set_promised_round", "set_accepted_round", "set_decided_idx", "AppendAll",
        "TruncateAndAppend", "ResetToSnapshot"},
       /*state_members=*/{"n_", "leader_ballot_"},
       /*exempt=*/{}},
      {"src/omnipaxos/ble.cc",
       /*round_fields=*/{"round"},
       /*state_rounds=*/{"round_", "ballot_"},
       /*mutators=*/{},
       /*state_members=*/{"round_", "replies_"},
       /*exempt=*/{}},
      {"src/raft/raft.cc",
       /*round_fields=*/{"term"},
       /*state_rounds=*/{"term_"},
       /*mutators=*/{},
       /*state_members=*/{"term_", "voted_for_"},
       /*exempt=*/{}},
      {"src/multipaxos/multipaxos.cc",
       /*round_fields=*/{"b", "promised"},
       /*state_rounds=*/{"promised_", "ballot_", "active_leader_", "max_seen_"},
       /*mutators=*/{},
       /*state_members=*/{"promised_", "ballot_"},
       /*exempt=*/{}},
      {"src/vr/vr_election.cc",
       /*round_fields=*/{"view"},
       /*state_rounds=*/{"view_"},
       /*mutators=*/{},
       /*state_members=*/{"view_", "svc_received_", "dvc_received_"},
       /*exempt=*/{}},
  };

  // --- opx-quorum-arith ---------------------------------------------------
  // All majority math must flow through util::MajorityOf / util::MaxMinorityOf
  // (src/util/quorum.h is the one sanctioned implementation).
  cfg.quorum.dirs = {"src", "tests", "bench"};
  cfg.quorum.helper_file = "src/util/quorum.h";
  cfg.quorum.size_idents = {"kServers", "num_servers", "cluster_size", "n_servers"};

  // --- opx-blocking-in-loop -----------------------------------------------
  // Deterministic code (simulator callbacks) may never issue blocking
  // syscalls; in the real-I/O layer, everything reachable from the event-loop
  // entry points must stay non-blocking (poll-readiness model, ROADMAP 4).
  cfg.blocking.det_dirs = cfg.determinism.dirs;
  cfg.blocking.event_dirs = {"src/net", "bench"};
  cfg.blocking.entries = {
      {"src/net/tcp_transport.cc", "Poll"},
      {"src/net/tcp_transport.cc", "Flush"},
      {"src/net/epoll_loop.cc", "Wait"},
      {"src/net/omni_tcp_server.cc", "StepOnce"},
      {"src/net/omni_tcp_server.cc", "Run"},
      {"src/net/omni_tcp_server.cc", "OnPeerMessage"},
      {"src/net/omni_tcp_server.cc", "OnClientFrame"},
      {"bench/loadgen.cc", "DriveLoad"},
  };

  // --- opx-span-escape ----------------------------------------------------
  // std::span / string_view parameters are borrowed for the duration of the
  // call; storing one whole into a member outlives the borrow (the backing
  // log segment may be truncated, compacted, or reallocated).
  cfg.span_escape.dirs = {"src", "tests", "bench"};

  // --- opx-wire-taint -----------------------------------------------------
  // Everything that decodes untrusted bytes: GetU32/GetU64 (client + WAL
  // recovery), the codec Decoder methods (U8/U32/U64/GetEntry/GetBallot).
  // The sink list is the allocation/copy surface a hostile length header
  // reaches first.
  cfg.wire_taint.dirs = {"src", "tests", "bench"};

  // --- opx-index-arith ----------------------------------------------------
  // Raw +/- against the compaction floors anywhere outside the checked
  // helper header (the PR 8 seed-bug shape).
  cfg.index_arith.dirs = {"src", "tests", "bench"};
  cfg.index_arith.helper_file = "src/util/log_index.h";

  // --- opx-ref-lifetime ---------------------------------------------------
  // Raw pointers derived from the refcounted frame layer (PR 7) must not
  // outlive the frame: FramePool::Release/Clear and FrameQueue::Consume
  // recycle the backing buffers.
  cfg.ref_lifetime.dirs = {"src", "tests", "bench"};

  return cfg;
}

}  // namespace opx::analyze
