// The repo's own analyzer configuration: which directories are deterministic,
// which variants are wire formats, which handler functions must persist
// before replying, and which files must stay wired to the auditor.
//
// DESIGN.md §11 documents every rule and how to extend the tables.
#include <algorithm>
#include <filesystem>

#include "tools/analyze/analyzer.h"

namespace opx::analyze {

AnalyzerConfig DefaultConfig(const std::string& root) {
  AnalyzerConfig cfg;
  cfg.root = root;

  // --- opx-determinism ----------------------------------------------------
  // Everything replayed by the simulator or fingerprinted by the determinism
  // tests. src/util is exempt (it *implements* the sanctioned Rng/clock) and
  // src/net is the real-I/O boundary where wall clocks are legitimate.
  cfg.determinism.dirs = {"src/sim", "src/omnipaxos", "src/raft",
                          "src/multipaxos", "src/vr", "src/rsm"};
  cfg.determinism.function_dirs = cfg.determinism.dirs;

  // --- opx-dispatch (ported from the retired tools/lint_handlers.py) ------
  cfg.variants = {
      {"PaxosMessage", "src/omnipaxos/messages.h", {"src/omnipaxos/sequence_paxos.cc"}},
      {"BleMessage", "src/omnipaxos/messages.h", {"src/omnipaxos/ble.cc"}},
      {"OmniMessage", "src/omnipaxos/omni_paxos.h", {"src/omnipaxos/omni_paxos.cc"}},
      {"RaftMessage", "src/raft/messages.h", {"src/raft/raft.cc"}},
      {"MpxMessage", "src/multipaxos/messages.h", {"src/multipaxos/multipaxos.cc"}},
      {"VrMessage", "src/vr/vr_election.h", {"src/vr/vr_election.cc"}},
      {"VrWire", "src/vr/vr_replica.h", {"src/vr/vr_replica.h"}},
  };

  // --- opx-persist-order --------------------------------------------------
  // Sequence Paxos is the protocol whose Appendix-A proof this repo tracks;
  // each rule names the reply that advertises durable state and the Storage
  // mutators that must land first. (Raft's rejection replies reuse the
  // success message type, which makes a lexical before/after rule unsound
  // there — see DESIGN.md §11.)
  const std::string sp = "src/omnipaxos/sequence_paxos.cc";
  cfg.handlers = {
      {sp, "BecomeLeader", {"set_promised_round"}, {"Prepare"}, {"Emit"}},
      {sp, "HandlePrepare", {"set_promised_round"}, {"Promise"}, {"Emit"}},
      {sp,
       "HandleAcceptSync",
       {"set_accepted_round", "TruncateAndAppend", "ResetToSnapshot"},
       {"Accepted"},
       {"Emit"}},
      {sp, "HandleAcceptDecide", {"AppendAll"}, {"Accepted"}, {"Emit"}},
  };

  // --- opx-msg-init -------------------------------------------------------
  // Every wire header: any file named messages.h / client_messages.h under
  // src/, discovered so new protocols are covered automatically.
  namespace fs = std::filesystem;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(fs::path(root) / "src", ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) {
      continue;
    }
    const std::string base = it->path().filename().string();
    if (base == "messages.h" || base == "client_messages.h") {
      cfg.wire_headers.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(cfg.wire_headers.begin(), cfg.wire_headers.end());

  // --- opx-audit-hook -----------------------------------------------------
  // Each protocol implementation must expose the AuditView snapshot the
  // cross-replica auditor consumes and keep OPX_CHECK-layer assertions live;
  // the simulated harness must actually run the auditor.
  cfg.audit = {
      {"src/omnipaxos/omni_paxos.cc", {"Audit", "AuditView"}, false},
      {"src/omnipaxos/sequence_paxos.cc", {}, true},
      {"src/raft/raft.cc", {"Audit", "AuditView"}, true},
      {"src/multipaxos/multipaxos.cc", {"Audit", "AuditView"}, true},
      {"src/vr/vr_replica.h", {"Audit", "AuditView"}, false},
      {"src/rsm/cluster_sim.h", {"SafetyAuditor", "Audit"}, false},
  };

  // --- opx-obs-hook -------------------------------------------------------
  // Every protocol handler and the simulated network must route observable
  // transitions through the DESIGN.md §12 trace recorder; the harness headers
  // that own the sink must also reference ObsSink itself. Without these the
  // trace-oracle conformance tests go silently vacuous.
  cfg.obs = {
      {"src/omnipaxos/ble.cc", {"OPX_TRACE"}},
      {"src/omnipaxos/sequence_paxos.cc", {"OPX_TRACE"}},
      {"src/raft/raft.cc", {"OPX_TRACE"}},
      {"src/multipaxos/multipaxos.cc", {"OPX_TRACE"}},
      {"src/vr/vr_election.cc", {"OPX_TRACE"}},
      {"src/sim/network.h", {"OPX_TRACE", "ObsSink"}},
      {"src/rsm/cluster_sim.h", {"OPX_TRACE", "ObsSink"}},
      {"src/rsm/omni_reconfig_sim.h", {"OPX_TRACE", "ObsSink"}},
  };

  return cfg;
}

}  // namespace opx::analyze
