// Baseline support: a committed file of `check file key` lines that
// grandfathers known findings. The analyzer exits non-zero only on findings
// absent from the baseline, and reports stale entries so the file shrinks
// monotonically. Regenerate with `opx_analyze --write-baseline`.
#include <fstream>
#include <sstream>

#include "tools/analyze/analyzer.h"

namespace opx::analyze {

bool LoadBaselineFile(const std::string& path, std::set<std::string>* out) {
  std::ifstream in(path);
  if (!in.good()) {
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') {
      continue;
    }
    const size_t e = line.find_last_not_of(" \t\r");
    std::string entry = line.substr(b, e - b + 1);
    // Normalize interior whitespace to single spaces.
    std::istringstream ss(entry);
    std::string word;
    std::string norm;
    while (ss >> word) {
      norm += (norm.empty() ? "" : " ") + word;
    }
    if (!norm.empty()) {
      out->insert(norm);
    }
  }
  return true;
}

std::vector<Finding> FilterBaseline(const std::vector<Finding>& findings,
                                    const std::set<std::string>& baseline,
                                    int* baselined, std::vector<std::string>* stale) {
  std::vector<Finding> fresh;
  std::set<std::string> used;
  for (const Finding& f : findings) {
    const std::string key = f.BaselineKey();
    if (baseline.count(key) > 0) {
      ++*baselined;
      used.insert(key);
    } else {
      fresh.push_back(f);
    }
  }
  if (stale != nullptr) {
    for (const std::string& entry : baseline) {
      if (used.count(entry) == 0) {
        stale->push_back(entry);
      }
    }
  }
  return fresh;
}

}  // namespace opx::analyze
