// opx_analyze — protocol-aware static analysis for the Omni-Paxos tree.
//
// A dependency-free C++ tokenizer, a per-function CFG/dominance engine
// (cfg.h, DESIGN.md §13), a project-wide call graph (callgraph.h, DESIGN.md
// §16), and thirteen checks that encode the implementation invariants the
// safety proof (PAPER.md Appendix A) assumes but the compiler never
// verifies:
//
//   opx-determinism    deterministic code must not depend on unordered
//                      container iteration order, wall clocks, or ambient
//                      randomness; std::function stays banned from the sim
//                      and protocol hot paths (PR 2 convention).
//   opx-persist-order  a reply that advertises durable state (Promise,
//                      Accepted, ...) must be emitted only after the
//                      Storage mutation it acknowledges.
//   opx-dispatch       every std::variant wire alternative has a dispatch
//                      case in its handler (is_same_v chain / get_if ladder).
//   opx-msg-init       every scalar field of a wire-message struct carries a
//                      default initializer (uninitialized POD on the wire is
//                      a determinism and MSan-class hazard).
//   opx-audit-hook     protocol implementations expose the PR 1 auditor
//                      surface (AuditView snapshot) and keep OPX_CHECK /
//                      OPX_DCHECK assertions live.
//   opx-obs-hook       protocol handler files route their observable events
//                      through the obs::ObsSink trace recorder (OPX_TRACE /
//                      OPX_TRACE_NOW), so the trace-oracle conformance tests
//                      keep seeing every protocol transition (DESIGN.md §12).
//   opx-ballot-guard   a state mutation inside a message handler must be
//                      dominated by a round/ballot comparison against the
//                      message's round, in the accepting direction (msg
//                      round >= / > / == own round); wrong-direction guards
//                      are flagged separately. One-level call summaries make
//                      the rule interprocedural within the handler file.
//   opx-quorum-arith   majority arithmetic (`.../2`) must route through the
//                      shared util::MajorityOf helper; hand-rolled `n/2`,
//                      `n/2+1`, and the (even-n-wrong) `(n+1)/2` are flagged.
//   opx-blocking-in-loop  no blocking syscalls (read/write/connect/fsync/
//                      sleep/recv/poll...) in deterministic code, nor
//                      reachable from a net event-loop entry point (call
//                      summaries across src/net), preparing the epoll era.
//   opx-span-escape    a span/string_view-typed parameter must not be stored
//                      into a member or member container that outlives the
//                      call (the SharedSuffix zero-copy path hands out such
//                      views).
//   opx-wire-taint     a value decoded from wire bytes (GetU32/U64, codec
//                      field extraction) must not reach an allocation size
//                      (resize/reserve/assign), memcpy/memmove length,
//                      pointer-parameter index, or sole loop bound without a
//                      dominating upper-bound comparison on the bare value;
//                      call-graph summaries flag tainted arguments handed to
//                      a callee that sinks its parameter (interprocedural,
//                      DESIGN.md §16).
//   opx-index-arith    raw `+`/`-` arithmetic against a log compaction floor
//                      (compacted_idx/decided_idx/accepted_idx — the shape
//                      of both PR 8 seed bugs) must flow through the checked
//                      util::FloorOffset/IndexEnd/IndexBack helpers in
//                      src/util/log_index.h; OPX_CHECK arguments are exempt
//                      (they *are* the bounds enforcement).
//   opx-ref-lifetime   a raw pointer derived from a refcounted frame
//                      (FrameRef->bytes.data(), SharedSuffix contents) must
//                      not be stored into an outliving member, used after a
//                      pool/queue invalidation (Clear/Release/Consume), or
//                      passed to a callee that stores its pointer parameter
//                      into a member (call-graph summaries).
//
// Findings can be suppressed inline with `// NOLINT(opx-<check>)` on the
// flagged line (bare `// NOLINT` suppresses all checks), or via a committed
// baseline file of `check file key` lines. The analyzer exits non-zero on
// any non-baselined finding. See DESIGN.md §11.
#ifndef TOOLS_ANALYZE_ANALYZER_H_
#define TOOLS_ANALYZE_ANALYZER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace opx::analyze {

// --------------------------------------------------------------------------
// Tokenizer.
// --------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kPunct };

struct Tok {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;

  bool Is(std::string_view t) const { return text == t; }
  bool IsIdent(std::string_view t) const { return kind == TokKind::kIdent && text == t; }
};

// One tokenized source file. Comments and preprocessor lines are stripped
// from the token stream; comment text is kept per line for NOLINT handling.
struct SourceFile {
  std::string path;  // root-relative, forward slashes
  std::vector<Tok> toks;
  std::map<int, std::string> line_comments;

  // True when `line` carries a NOLINT comment covering `check`.
  bool Suppressed(int line, std::string_view check) const;
};

// Tokenizes `text`; fills `toks` and `line_comments` of `out`.
void Tokenize(std::string_view text, SourceFile* out);

// Loads and tokenizes files on demand; every check shares one cache.
class FileSet {
 public:
  explicit FileSet(std::string root) : root_(std::move(root)) {}

  // nullptr when the file does not exist or cannot be read.
  const SourceFile* Get(const std::string& rel_path);

  // Loads and tokenizes `paths` with `jobs` worker threads (0: one per
  // hardware core, capped at 8), then merges the results into the cache.
  // Get() afterwards is pure cache lookup — the checks themselves stay
  // single-threaded, so finding order is unchanged. Returns the number of
  // files loaded (cache hits excluded).
  int Preload(const std::vector<std::string>& paths, int jobs);

  // Recursively lists .h/.cc/.cpp/.hpp files under root/rel_dir, sorted,
  // as root-relative paths. Missing directories yield an empty list.
  std::vector<std::string> ListDir(const std::string& rel_dir) const;

  const std::string& root() const { return root_; }

 private:
  std::string root_;
  std::map<std::string, std::unique_ptr<SourceFile>> cache_;
};

// --------------------------------------------------------------------------
// Findings.
// --------------------------------------------------------------------------

struct Finding {
  std::string check;    // e.g. "opx-determinism"
  std::string file;     // root-relative path
  int line = 0;
  std::string key;      // stable, line-independent baseline key (no spaces)
  std::string message;

  // "check file key" — the baseline line format.
  std::string BaselineKey() const { return check + " " + file + " " + key; }
};

// --------------------------------------------------------------------------
// Configuration.
// --------------------------------------------------------------------------

struct DeterminismConfig {
  // Directories holding deterministic code (unordered containers, wall
  // clocks, and ambient randomness are banned here).
  std::vector<std::string> dirs;
  // Directories where std::function is additionally banned (PR 2).
  std::vector<std::string> function_dirs;
};

// One `using Name = std::variant<...>;` wire format and the files that must
// dispatch on every alternative.
struct VariantRule {
  std::string name;
  std::string header;
  std::vector<std::string> dispatch_files;
};

// Persistence-before-send: in `function` (defined in `file`), the first send
// of an acknowledging message type must be preceded by one of `mutators`.
// With empty `ack_types`, any call to a `sends` function counts as the ack
// send — for helpers that construct and emit the message internally.
struct HandlerRule {
  std::string file;
  std::string function;
  std::vector<std::string> mutators;   // durable-state mutator method names
  std::vector<std::string> ack_types;  // message types that advertise it
  std::vector<std::string> sends = {"Emit"};  // send-function names
};

// Audit-hook coverage: `file` must contain every identifier in `required`;
// with `require_check_macro`, at least one OPX_CHECK*/OPX_DCHECK* use.
struct AuditRule {
  std::string file;
  std::vector<std::string> required;
  bool require_check_macro = false;
};

// Trace-hook coverage: `file` must reference every identifier in `required`
// (typically OPX_TRACE / OPX_TRACE_NOW / ObsSink), keeping the observability
// layer of DESIGN.md §12 wired into the protocol hot paths.
struct ObsRule {
  std::string file;
  std::vector<std::string> required;
};

// Ballot-monotonicity guards (opx-ballot-guard): in `file`, every function
// whose name starts with "Handle" is a message handler; its state mutations
// (calls to `mutators`, writes to `state_members`) must be dominated by a
// comparison of the message's round (a parameter, a `param.field` with
// field in `round_fields`, or a get_if-bound alias of one) against the
// replica's own round state (`state_rounds`), accepting only >=, >, or ==.
// The same analysis summarizes every function in the file, so a handler
// calling an unguarded mutator helper is flagged at the call site.
struct BallotGuardRule {
  std::string file;
  std::vector<std::string> round_fields;   // message-side round field names
  std::vector<std::string> state_rounds;   // own-round members/accessors
  std::vector<std::string> mutators;       // state-mutating callee names
  std::vector<std::string> state_members;  // members whose write is a mutation
  std::vector<std::string> exempt;  // handlers with no ballot semantics
};

// Quorum arithmetic (opx-quorum-arith): `... / 2` over a cluster-size
// expression anywhere under `dirs` must live in `helper_file` (the one
// shared majority helper). A size expression is a call to one of
// `size_calls` or a bare identifier in `size_idents`.
struct QuorumConfig {
  std::vector<std::string> dirs;
  std::string helper_file;
  std::vector<std::string> size_calls = {"size", "ClusterSize", "NumNodes"};
  std::vector<std::string> size_idents;
};

// Blocking syscalls (opx-blocking-in-loop): banned outright under
// `det_dirs` (simulator callbacks run there); under `event_dirs`, banned in
// any function reachable from one of the named event-loop `entries`
// (name-based call summaries across all files in `event_dirs`).
struct BlockingConfig {
  std::vector<std::string> det_dirs;
  std::vector<std::string> event_dirs;
  struct EntryPoint {
    std::string file;
    std::string function;
  };
  std::vector<EntryPoint> entries;
};

// Span escape (opx-span-escape): in every function under `dirs`, a
// parameter whose type names one of `view_types` must not be assigned to a
// member (trailing-underscore convention) or passed whole into a member
// container mutation — the view outlives the call while its backing storage
// may not.
struct SpanEscapeConfig {
  std::vector<std::string> dirs;
  std::vector<std::string> view_types = {"span", "string_view"};
};

// Wire taint (opx-wire-taint): under `dirs`, a value produced by one of the
// `sources` (via `&out` argument or direct assignment of the return value)
// is tainted. Taint propagates through assignments and, via call-graph
// summaries, into callees; it dies at `x = std::min(x, bound)` clamps and
// OPX_CHECK_LE/LT assertions. Reaching a `sink_calls` argument, a
// pointer-parameter subscript, or a sole loop bound without a dominating
// upper-bound guard on the *bare* value is a finding (`4 + len <= size` does
// not sanitize `len` — the addition itself can wrap, which is exactly the
// PR 6 client-decode bug shape).
struct WireTaintConfig {
  std::vector<std::string> dirs;
  std::vector<std::string> sources = {"GetU8",  "GetU16", "GetU32", "GetU64",
                                      "U8",     "U16",    "U32",    "U64",
                                      "GetBallot", "GetEntry"};
  std::vector<std::string> sink_calls = {"resize", "reserve", "assign", "memcpy",
                                         "memmove"};
};

// Index arithmetic (opx-index-arith): under `dirs`, a `+`/`-` directly
// adjacent to one of the `floor_idents` (member or accessor-call form) must
// live in `helper_file` — everywhere else the checked util helpers are
// required. Arguments of OPX_CHECK*/OPX_DCHECK* macros are exempt.
struct IndexArithConfig {
  std::vector<std::string> dirs;
  std::string helper_file;
  std::vector<std::string> floor_idents = {"compacted_idx", "compacted_idx_",
                                           "decided_idx",   "decided_idx_",
                                           "accepted_idx",  "accepted_idx_"};
};

// Ref lifetime (opx-ref-lifetime): under `dirs`, a variable whose type names
// one of `ref_types` is a refcounted view; a raw pointer derived from it
// (`.data()` / `->bytes`) must not be stored into a member, used after a
// call to one of the `invalidators`, or passed to a callee that stores its
// pointer parameter into a member.
struct RefLifetimeConfig {
  std::vector<std::string> dirs;
  std::vector<std::string> ref_types = {"FrameRef", "SharedSuffix"};
  std::vector<std::string> invalidators = {"Clear", "Release", "Consume"};
};

struct AnalyzerConfig {
  std::string root;  // absolute path of the tree to analyze
  DeterminismConfig determinism;
  std::vector<VariantRule> variants;
  std::vector<HandlerRule> handlers;
  std::vector<std::string> wire_headers;  // opx-msg-init scope
  std::vector<AuditRule> audit;
  std::vector<ObsRule> obs;
  std::vector<BallotGuardRule> ballot_guards;
  QuorumConfig quorum;
  BlockingConfig blocking;
  SpanEscapeConfig span_escape;
  WireTaintConfig wire_taint;
  IndexArithConfig index_arith;
  RefLifetimeConfig ref_lifetime;
  int jobs = 0;  // preload worker threads; 0 = one per core (capped at 8)
};

// The repo's own configuration (scans `root` for the wire headers).
AnalyzerConfig DefaultConfig(const std::string& root);

// --------------------------------------------------------------------------
// Running.
// --------------------------------------------------------------------------

inline constexpr const char* kCheckIds[] = {
    "opx-determinism",  "opx-persist-order", "opx-dispatch",
    "opx-msg-init",     "opx-audit-hook",    "opx-obs-hook",
    "opx-ballot-guard", "opx-quorum-arith",  "opx-blocking-in-loop",
    "opx-span-escape",  "opx-wire-taint",    "opx-index-arith",
    "opx-ref-lifetime",
};

// One-line docs, aligned with kCheckIds (--list-checks).
inline constexpr const char* kCheckDocs[] = {
    "no unordered containers, wall clocks, or ambient randomness in deterministic code",
    "a reply advertising durable state is sent only after the Storage mutation",
    "every std::variant wire alternative has a dispatch case in its handler",
    "every scalar field of a wire-message struct carries a default initializer",
    "protocol implementations expose the auditor surface and keep OPX_CHECK live",
    "protocol handlers route observable transitions through the trace recorder",
    "handler state mutations are dominated by an accepting round/ballot comparison",
    "majority arithmetic flows through util::MajorityOf, not hand-rolled n/2",
    "no blocking syscalls in deterministic code or reachable from event-loop entries",
    "span/string_view parameters are not stored into outliving members",
    "wire-decoded values reach no allocation size, index, or loop bound unguarded",
    "log-index arithmetic against compaction floors uses the checked util helpers",
    "raw pointers derived from refcounted frames never outlive the frame or pool",
};
static_assert(sizeof(kCheckDocs) / sizeof(kCheckDocs[0]) ==
              sizeof(kCheckIds) / sizeof(kCheckIds[0]));

struct CheckStats {
  std::string check;
  int files = 0;     // files examined
  int findings = 0;  // before baseline filtering
  double ms = 0.0;
};

struct AnalysisResult {
  std::vector<Finding> findings;  // sorted by (file, line, check)
  std::vector<CheckStats> stats;  // one per check, in kCheckIds order
  std::vector<std::string> errors;  // configured files that failed to load
  double wall_ms = 0.0;     // end-to-end wall time, preload included
  double preload_ms = 0.0;  // parallel tokenize time
  int preloaded_files = 0;
  int jobs = 1;  // worker threads the preload actually used
};

AnalysisResult RunAnalysis(const AnalyzerConfig& config);

// Individual checks (exposed for the fixture self-tests).
void CheckDeterminism(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int* files);
void CheckPersistOrder(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int* files,
                       std::vector<std::string>* errors);
void CheckDispatch(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int* files,
                   std::vector<std::string>* errors);
void CheckMsgInit(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int* files,
                  std::vector<std::string>* errors);
void CheckAuditHook(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int* files,
                    std::vector<std::string>* errors);
void CheckObsHook(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int* files,
                  std::vector<std::string>* errors);
void CheckBallotGuard(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int* files,
                      std::vector<std::string>* errors);
void CheckQuorumArith(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int* files,
                      std::vector<std::string>* errors);
void CheckBlockingInLoop(const AnalyzerConfig&, FileSet&, std::vector<Finding>*,
                         int* files, std::vector<std::string>* errors);
void CheckSpanEscape(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int* files,
                     std::vector<std::string>* errors);
void CheckWireTaint(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int* files,
                    std::vector<std::string>* errors);
void CheckIndexArith(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int* files,
                     std::vector<std::string>* errors);
void CheckRefLifetime(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int* files,
                      std::vector<std::string>* errors);

// --------------------------------------------------------------------------
// Baseline.
// --------------------------------------------------------------------------

// Parses a baseline file: one `check file key` triple per line, `#` comments
// and blank lines ignored. Returns false when the file cannot be read.
bool LoadBaselineFile(const std::string& path, std::set<std::string>* out);

// Splits findings into non-baselined (returned) and baselined (counted);
// `stale` receives baseline entries that matched nothing.
std::vector<Finding> FilterBaseline(const std::vector<Finding>& findings,
                                    const std::set<std::string>& baseline,
                                    int* baselined, std::vector<std::string>* stale);

}  // namespace opx::analyze

#endif  // TOOLS_ANALYZE_ANALYZER_H_
