// Call-graph construction: see callgraph.h for the resolution rules and
// DESIGN.md §16 for how the interprocedural checks consume the SCC order.
#include <algorithm>
#include <map>

#include "tools/analyze/callgraph.h"

namespace opx::analyze {

namespace {

// Index of the matching closer for the opener at `open`; toks.size() when
// unbalanced. (Local copy — the checks.cc helper is file-static.)
size_t MatchForward(const std::vector<Tok>& toks, size_t open, const char* opener,
                    const char* closer) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].Is(opener)) {
      ++depth;
    } else if (toks[i].Is(closer)) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

// `name (` sequences that are control flow or operators, not calls.
bool IsCallKeyword(const std::string& s) {
  static const char* kKeywords[] = {
      "if",       "for",     "while",    "switch",        "return",  "sizeof",
      "alignof",  "catch",   "decltype", "noexcept",      "new",     "delete",
      "throw",    "assert",  "defined",  "static_assert", "alignas", "co_await",
      "co_yield", "co_return"};
  for (const char* k : kKeywords) {
    if (s == k) {
      return true;
    }
  }
  return false;
}

// A class/struct definition's name and body token range.
struct ClassRange {
  std::string name;
  size_t open = 0;
  size_t close = 0;
};

// Every `class X ... { ... }` / `struct X ... { ... }` in the file,
// including nested ones. `enum class` and forward declarations are skipped;
// `template <class T>` parameters abort on the next keyword before reaching
// a brace, so they never produce a bogus range.
std::vector<ClassRange> FindClassRanges(const std::vector<Tok>& t) {
  std::vector<ClassRange> out;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!(t[i].IsIdent("class") || t[i].IsIdent("struct"))) {
      continue;
    }
    if (i > 0 && t[i - 1].IsIdent("enum")) {
      continue;
    }
    if (i + 1 >= t.size() || t[i + 1].kind != TokKind::kIdent) {
      continue;  // anonymous struct — nothing to qualify by
    }
    const std::string& name = t[i + 1].text;
    for (size_t k = i + 2; k < t.size(); ++k) {
      if (t[k].Is("{")) {
        const size_t close = MatchForward(t, k, "{", "}");
        if (close < t.size()) {
          out.push_back({name, k, close});
        }
        break;
      }
      // `;` forward declaration, `(` function/constructor syntax, `=` alias
      // or default, or the start of another declaration: not a definition.
      if (t[k].Is(";") || t[k].Is("(") || t[k].Is("=") || t[k].IsIdent("class") ||
          t[k].IsIdent("struct") || t[k].IsIdent("template") || t[k].IsIdent("enum")) {
        break;
      }
    }
  }
  return out;
}

// Innermost class range containing token `i`, or "".
std::string EnclosingClass(const std::vector<ClassRange>& ranges, size_t i) {
  const ClassRange* best = nullptr;
  for (const ClassRange& r : ranges) {
    if (i > r.open && i < r.close &&
        (best == nullptr || r.close - r.open < best->close - best->open)) {
      best = &r;
    }
  }
  return best == nullptr ? "" : best->name;
}

void AppendAll(const std::map<std::string, std::vector<int>>& index,
               const std::string& key, std::vector<int>* out) {
  const auto it = index.find(key);
  if (it != index.end()) {
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
}

}  // namespace

CallGraph CallGraph::Build(FileSet& files, const std::vector<std::string>& paths) {
  CallGraph g;

  // Pass 1: gather every function definition, with its enclosing class.
  for (const std::string& path : paths) {
    const SourceFile* sf = files.Get(path);
    if (sf == nullptr) {
      continue;
    }
    const std::vector<ClassRange> classes = FindClassRanges(sf->toks);
    for (FunctionDef& def : ParseFunctions(*sf)) {
      CgFunction fn;
      fn.sf = sf;
      fn.cls = def.qualifier.empty() ? EnclosingClass(classes, def.body_open)
                                     : def.qualifier;
      fn.def = std::move(def);
      g.functions_.push_back(std::move(fn));
    }
  }

  std::map<std::string, std::vector<int>> by_qualified;  // "Cls::name"
  std::map<std::string, std::vector<int>> methods;       // name, cls != ""
  std::map<std::string, std::vector<int>> free_fns;      // name, cls == ""
  for (size_t i = 0; i < g.functions_.size(); ++i) {
    const CgFunction& fn = g.functions_[i];
    if (fn.cls.empty()) {
      free_fns[fn.def.name].push_back(static_cast<int>(i));
    } else {
      by_qualified[fn.Qualified()].push_back(static_cast<int>(i));
      methods[fn.def.name].push_back(static_cast<int>(i));
    }
  }

  // Pass 2: call sites. `name (` inside a body, resolved per callgraph.h.
  g.calls_.resize(g.functions_.size());
  for (size_t u = 0; u < g.functions_.size(); ++u) {
    const CgFunction& caller = g.functions_[u];
    const std::vector<Tok>& t = caller.sf->toks;
    for (size_t i = caller.def.body_open + 1; i < caller.def.body_close; ++i) {
      if (t[i].kind != TokKind::kIdent || i + 1 >= t.size() || !t[i + 1].Is("(") ||
          IsCallKeyword(t[i].text)) {
        continue;
      }
      CallSite site;
      site.tok = i;
      site.name = t[i].text;
      if (i >= 2 && t[i - 1].Is("::") && t[i - 2].kind == TokKind::kIdent) {
        // Qualified: the named class's methods shadow everything; a
        // namespace qualifier (no such class) falls back to free functions.
        AppendAll(by_qualified, t[i - 2].text + "::" + site.name, &site.callees);
        if (site.callees.empty()) {
          AppendAll(free_fns, site.name, &site.callees);
        }
      } else if (i >= 2 && t[i - 1].Is("->") && t[i - 2].IsIdent("this")) {
        AppendAll(by_qualified, caller.cls + "::" + site.name, &site.callees);
        if (site.callees.empty()) {
          AppendAll(methods, site.name, &site.callees);
        }
      } else if (i >= 1 && (t[i - 1].Is(".") || t[i - 1].Is("->"))) {
        // Member call on an object of unknown type: every method of that
        // name (over-approximate; includes every virtual override).
        AppendAll(methods, site.name, &site.callees);
      } else {
        // Unqualified: own class first, then free functions, then any
        // method as a last resort.
        if (!caller.cls.empty()) {
          AppendAll(by_qualified, caller.cls + "::" + site.name, &site.callees);
        }
        if (site.callees.empty()) {
          AppendAll(free_fns, site.name, &site.callees);
        }
        if (site.callees.empty()) {
          AppendAll(methods, site.name, &site.callees);
        }
      }
      g.calls_[u].push_back(std::move(site));
    }
  }

  // Dedup'd adjacency for the SCC pass.
  const size_t n = g.functions_.size();
  std::vector<std::vector<int>> edges(n);
  for (size_t u = 0; u < n; ++u) {
    for (const CallSite& site : g.calls_[u]) {
      edges[u].insert(edges[u].end(), site.callees.begin(), site.callees.end());
    }
    std::sort(edges[u].begin(), edges[u].end());
    edges[u].erase(std::unique(edges[u].begin(), edges[u].end()), edges[u].end());
  }

  // Iterative Tarjan. An SCC is emitted only once every SCC it calls into
  // has been emitted, so emission order is bottom-up.
  g.scc_of_.assign(n, -1);
  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;
  struct Frame {
    int v;
    size_t ei;
  };
  for (size_t v0 = 0; v0 < n; ++v0) {
    if (index[v0] != -1) {
      continue;
    }
    std::vector<Frame> work;
    work.push_back({static_cast<int>(v0), 0});
    index[v0] = low[v0] = next_index++;
    stack.push_back(static_cast<int>(v0));
    on_stack[v0] = true;
    while (!work.empty()) {
      Frame& f = work.back();
      const std::vector<int>& es = edges[static_cast<size_t>(f.v)];
      if (f.ei < es.size()) {
        const int w = es[f.ei++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          work.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
        continue;
      }
      if (low[f.v] == index[f.v]) {
        std::vector<int> comp;
        while (true) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          g.scc_of_[w] = static_cast<int>(g.sccs_.size());
          comp.push_back(w);
          if (w == f.v) {
            break;
          }
        }
        std::sort(comp.begin(), comp.end());
        g.sccs_.push_back(std::move(comp));
      }
      const int v = f.v;
      work.pop_back();
      if (!work.empty()) {
        low[work.back().v] = std::min(low[work.back().v], low[v]);
      }
    }
  }

  return g;
}

bool CallGraph::OnCycle(int fn) const {
  if (sccs_[static_cast<size_t>(scc_of_[fn])].size() > 1) {
    return true;
  }
  for (const CallSite& site : calls_[static_cast<size_t>(fn)]) {
    for (const int callee : site.callees) {
      if (callee == fn) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace opx::analyze
