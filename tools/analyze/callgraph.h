// Project-wide call graph for opx_analyze v3 (DESIGN.md §16): merges the
// function definitions of many translation units (headers and .cc files
// tokenized by the same FileSet), resolves call sites across files by
// qualified name, and orders the strongly connected components bottom-up so
// interprocedural checks can compute callee summaries before their callers.
//
// Resolution is lexical and deliberately over-approximate — no type
// inference, so `obj.Step()` resolves to *every* method named Step — which
// is the sound direction for the taint/lifetime checks built on top: extra
// edges can only add findings-candidates, never hide a real flow. The three
// precise rules that matter for this tree are implemented exactly:
//
//   Class::Method(...)   the explicit qualifier wins — only that class's
//                        methods are candidates (free functions of the same
//                        name are shadowed);
//   name(...) inside a   the enclosing class's own method shadows free
//   method body          functions of the same name (and `this->name(...)`
//                        never resolves to a free function);
//   name(...) elsewhere  free functions first, any method as fallback.
//
// In-class definitions carry no qualifier in FunctionDef, so the builder
// recovers the enclosing class itself from the struct/class brace nesting.
#ifndef TOOLS_ANALYZE_CALLGRAPH_H_
#define TOOLS_ANALYZE_CALLGRAPH_H_

#include "tools/analyze/cfg.h"

namespace opx::analyze {

// One function definition somewhere in the analyzed file set.
struct CgFunction {
  const SourceFile* sf = nullptr;
  FunctionDef def;
  std::string cls;  // enclosing class ("" for free functions)

  std::string Qualified() const { return cls.empty() ? def.name : cls + "::" + def.name; }
};

// One call site inside a function body: the token index of the callee name
// and every function definition it may resolve to (empty for calls into the
// standard library or code outside the file set).
struct CallSite {
  size_t tok = 0;
  std::string name;
  std::vector<int> callees;  // indices into CallGraph::functions()
};

class CallGraph {
 public:
  // Tokenizes nothing itself: `paths` must name files loadable through
  // `files` (missing files are skipped). Function order is deterministic —
  // files in the given order, definitions in source order.
  static CallGraph Build(FileSet& files, const std::vector<std::string>& paths);

  const std::vector<CgFunction>& functions() const { return functions_; }

  // Call sites of functions_[i], in source order.
  const std::vector<std::vector<CallSite>>& calls() const { return calls_; }

  // SCC id of each function. Ids are emission-ordered bottom-up: every call
  // edge u -> v has scc_of[v] <= scc_of[u], with equality exactly inside a
  // cycle. Iterating sccs()[0..n) therefore visits callees before callers.
  const std::vector<int>& scc_of() const { return scc_of_; }
  const std::vector<std::vector<int>>& sccs() const { return sccs_; }

  // True when functions_[fn] sits on a cycle (a multi-function SCC or a
  // direct self-call) — interprocedural passes iterate those to a fixpoint.
  bool OnCycle(int fn) const;

 private:
  std::vector<CgFunction> functions_;
  std::vector<std::vector<CallSite>> calls_;
  std::vector<int> scc_of_;
  std::vector<std::vector<int>> sccs_;
};

}  // namespace opx::analyze

#endif  // TOOLS_ANALYZE_CALLGRAPH_H_
