// C++ tokenizer for opx_analyze: identifiers, numbers, string/char literals
// (including raw strings), and punctuation. Comments are stripped but their
// text is recorded per line for NOLINT handling; preprocessor directives are
// skipped entirely (so `#include <unordered_map>` is not a determinism hit —
// the declaration site is what gets flagged).
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "tools/analyze/analyzer.h"

namespace opx::analyze {

namespace {

bool IdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

void Tokenize(std::string_view text, SourceFile* out) {
  out->toks.clear();
  out->line_comments.clear();
  size_t i = 0;
  const size_t n = text.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto record_comment = [&](int at_line, std::string_view body) {
    std::string& slot = out->line_comments[at_line];
    if (!slot.empty()) {
      slot += ' ';
    }
    slot.append(body);
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line splicing: backslash-newline disappears before tokenization (the
    // continuation still advances the line counter).
    if (c == '\\' && i + 1 < n && text[i + 1] == '\n') {
      ++line;
      i += 2;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring continuations.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (text[i] == '\n') {
          break;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const size_t start = i;
      while (i < n && text[i] != '\n') {
        ++i;
      }
      record_comment(line, text.substr(start, i - start));
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      const size_t start = i;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          ++line;
        }
        ++i;
      }
      i = std::min(n, i + 2);
      record_comment(start_line, text.substr(start, std::min(i, n) - start));
      continue;
    }
    // Raw string literal: R"delim( ... )delim", with optional encoding
    // prefix (u8R / uR / UR / LR). The prefix check runs before identifier
    // scanning so `u8R"(...)"` does not decay into ident + broken string.
    size_t raw_r = std::string_view::npos;  // offset of the R of a raw string
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      raw_r = i;
    } else if ((c == 'u' || c == 'U' || c == 'L') && i + 2 < n) {
      if (text[i + 1] == 'R' && text[i + 2] == '"') {
        raw_r = i + 1;
      } else if (c == 'u' && text[i + 1] == '8' && i + 3 < n && text[i + 2] == 'R' &&
                 text[i + 3] == '"') {
        raw_r = i + 2;
      }
    }
    if (raw_r != std::string_view::npos) {
      size_t j = raw_r + 2;
      std::string delim;
      while (j < n && text[j] != '(') {
        delim += text[j++];
      }
      const std::string close = ")" + delim + "\"";
      const size_t raw_end = text.find(close, j);
      const size_t stop = raw_end == std::string_view::npos ? n : raw_end + close.size();
      out->toks.push_back({TokKind::kString, std::string(text.substr(i, stop - i)), line});
      line += static_cast<int>(std::count(text.begin() + static_cast<ptrdiff_t>(i),
                                          text.begin() + static_cast<ptrdiff_t>(stop), '\n'));
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const size_t start = i;
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (text[i] == '\n') {
          ++line;
        }
        ++i;
      }
      i = std::min(n, i + 1);
      out->toks.push_back({TokKind::kString, std::string(text.substr(start, i - start)), line});
      continue;
    }
    // Identifier / keyword.
    if (IdentStart(c)) {
      const size_t start = i;
      while (i < n && IdentChar(text[i])) {
        ++i;
      }
      out->toks.push_back({TokKind::kIdent, std::string(text.substr(start, i - start)), line});
      continue;
    }
    // Number (digit-separators and suffixes folded in; good enough here).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const size_t start = i;
      while (i < n && (IdentChar(text[i]) || text[i] == '.' || text[i] == '\'')) {
        ++i;
      }
      out->toks.push_back({TokKind::kNumber, std::string(text.substr(start, i - start)), line});
      continue;
    }
    // Punctuation; "::" and "->" kept as single tokens (the checks match on
    // qualification and member access), and the comparison/logical operators
    // "== != <= >= && ||" as well (the CFG guard analysis matches on them).
    // ">>" stays two tokens so template-closer matching keeps working.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      out->toks.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      out->toks.push_back({TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    if (i + 1 < n &&
        (((c == '=' || c == '!' || c == '<' || c == '>') && text[i + 1] == '=') ||
         (c == '&' && text[i + 1] == '&') || (c == '|' && text[i + 1] == '|'))) {
      out->toks.push_back({TokKind::kPunct, std::string{c, text[i + 1]}, line});
      i += 2;
      continue;
    }
    out->toks.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
}

bool SourceFile::Suppressed(int line, std::string_view check) const {
  const auto it = line_comments.find(line);
  if (it == line_comments.end()) {
    return false;
  }
  const std::string& comment = it->second;
  const size_t pos = comment.find("NOLINT");
  if (pos == std::string::npos) {
    return false;
  }
  const size_t open = pos + 6;  // strlen("NOLINT")
  if (open >= comment.size() || comment[open] != '(') {
    return true;  // bare NOLINT: suppress every check
  }
  const size_t close = comment.find(')', open);
  const std::string list =
      comment.substr(open + 1, (close == std::string::npos ? comment.size() : close) - open - 1);
  // Comma-separated check ids; "opx-*" covers the whole family.
  std::stringstream ss(list);
  std::string id;
  while (std::getline(ss, id, ',')) {
    const size_t b = id.find_first_not_of(" \t");
    const size_t e = id.find_last_not_of(" \t");
    if (b == std::string::npos) {
      continue;
    }
    const std::string trimmed = id.substr(b, e - b + 1);
    if (trimmed == check || trimmed == "opx-*") {
      return true;
    }
  }
  return false;
}

namespace {

// Read + tokenize, no shared state — safe to run concurrently.
std::unique_ptr<SourceFile> LoadFile(const std::string& root, const std::string& rel_path) {
  std::ifstream in(root + "/" + rel_path, std::ios::binary);
  if (!in.good()) {
    return nullptr;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto sf = std::make_unique<SourceFile>();
  sf->path = rel_path;
  Tokenize(buf.str(), sf.get());
  return sf;
}

}  // namespace

const SourceFile* FileSet::Get(const std::string& rel_path) {
  const auto it = cache_.find(rel_path);
  if (it != cache_.end()) {
    return it->second.get();
  }
  auto sf = LoadFile(root_, rel_path);
  const SourceFile* out = sf.get();
  cache_[rel_path] = std::move(sf);
  return out;
}

int FileSet::Preload(const std::vector<std::string>& paths, int jobs) {
  std::vector<std::string> todo;
  std::set<std::string> seen;
  for (const std::string& p : paths) {
    if (cache_.find(p) == cache_.end() && seen.insert(p).second) {
      todo.push_back(p);
    }
  }
  if (todo.empty()) {
    return 0;
  }
  if (jobs <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = static_cast<int>(std::min(hw == 0 ? 1u : hw, 8u));
  }
  jobs = std::min<int>(jobs, static_cast<int>(todo.size()));

  // Each worker owns a disjoint slice of the (path, result) table; the map
  // merge below is the only shared-state step and runs after the join, so
  // Tokenize needs no locking and check output order cannot change.
  std::vector<std::unique_ptr<SourceFile>> loaded(todo.size());
  auto worker = [&](int w) {
    for (size_t i = static_cast<size_t>(w); i < todo.size();
         i += static_cast<size_t>(jobs)) {
      loaded[i] = LoadFile(root_, todo[i]);
    }
  };
  if (jobs == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      threads.emplace_back(worker, w);
    }
    for (std::thread& th : threads) {
      th.join();
    }
  }
  int count = 0;
  for (size_t i = 0; i < todo.size(); ++i) {
    count += loaded[i] != nullptr ? 1 : 0;
    cache_[todo[i]] = std::move(loaded[i]);
  }
  return count;
}

std::vector<std::string> FileSet::ListDir(const std::string& rel_dir) const {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  const fs::path base = fs::path(root_) / rel_dir;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(base, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) {
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext != ".h" && ext != ".cc" && ext != ".cpp" && ext != ".hpp") {
      continue;
    }
    out.push_back(fs::relative(it->path(), root_).generic_string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace opx::analyze
