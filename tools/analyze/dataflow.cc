// Dominance and reaching-guard analysis over the cfg.cc basic blocks.
//
// Dominators are computed with the classic iterative bitset dataflow
// (dom(entry) = {entry}; dom(b) = {b} ∪ ∩ dom(preds)); function CFGs here
// are tens of blocks, so the quadratic worst case is irrelevant. Guard facts
// then need no path enumeration: every branch successor was materialized as
// a dedicated edge block during lowering, so "condition C held when control
// reached X" is exactly "the corresponding edge block dominates X".
#include <algorithm>

#include "tools/analyze/cfg.h"

namespace opx::analyze {

GuardIndex::GuardIndex(const Cfg& cfg) : cfg_(&cfg) {
  const std::vector<BasicBlock>& blocks = cfg.blocks();
  const size_t n = blocks.size();
  dom_.assign(n, std::vector<bool>(n, true));
  if (n == 0) {
    return;
  }
  const size_t entry = static_cast<size_t>(cfg.entry());
  dom_[entry].assign(n, false);
  dom_[entry][entry] = true;

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = 0; b < n; ++b) {
      if (b == entry) {
        continue;
      }
      std::vector<bool> next(n, true);
      if (blocks[b].preds.empty()) {
        // Unreachable (dead code after return, or the never-entered exit of
        // an infinite loop): keep the "dominated by everything" lattice top;
        // such blocks can never dominate reachable code.
        continue;
      }
      for (const int p : blocks[b].preds) {
        const std::vector<bool>& pd = dom_[static_cast<size_t>(p)];
        for (size_t i = 0; i < n; ++i) {
          next[i] = next[i] && pd[i];
        }
      }
      next[b] = true;
      if (next != dom_[b]) {
        dom_[b] = std::move(next);
        changed = true;
      }
    }
  }
}

bool GuardIndex::Dominates(int a, int b) const {
  if (a < 0 || b < 0 || static_cast<size_t>(b) >= dom_.size() ||
      static_cast<size_t>(a) >= dom_.size()) {
    return false;
  }
  return dom_[static_cast<size_t>(b)][static_cast<size_t>(a)];
}

std::vector<GuardFact> GuardIndex::FactsAtToken(size_t i) const {
  std::vector<GuardFact> facts;
  const int at = cfg_->BlockOfToken(i);
  if (at < 0) {
    return facts;
  }
  const std::vector<BasicBlock>& blocks = cfg_->blocks();
  for (size_t b = 0; b < blocks.size(); ++b) {
    const BasicBlock& blk = blocks[b];
    if (blk.cond.Empty() || blk.true_succ < 0 || blk.false_succ < 0) {
      continue;
    }
    if (static_cast<int>(b) == at) {
      continue;  // the branch's own condition is being evaluated, not known
    }
    if (Dominates(blk.true_succ, at)) {
      facts.push_back({blk.cond, true});
    } else if (Dominates(blk.false_succ, at)) {
      facts.push_back({blk.cond, false});
    }
  }
  return facts;
}

namespace {

// Does [begin, end) consist of one balanced parenthesized group?
bool WhollyParenthesized(const std::vector<Tok>& t, size_t begin, size_t end) {
  if (end - begin < 2 || !t[begin].Is("(")) {
    return false;
  }
  int depth = 0;
  for (size_t i = begin; i < end; ++i) {
    if (t[i].Is("(")) {
      ++depth;
    } else if (t[i].Is(")")) {
      if (--depth == 0) {
        return i == end - 1;
      }
    }
  }
  return false;
}

// Splits [begin, end) at top-level occurrences of `op` ("&&" or "||").
std::vector<TokRange> SplitTopLevel(const std::vector<Tok>& t, size_t begin,
                                    size_t end, const char* op) {
  std::vector<TokRange> parts;
  int depth = 0;
  size_t part_begin = begin;
  for (size_t i = begin; i < end; ++i) {
    if (t[i].Is("(") || t[i].Is("[") || t[i].Is("{")) {
      ++depth;
    } else if (t[i].Is(")") || t[i].Is("]") || t[i].Is("}")) {
      --depth;
    } else if (depth == 0 && t[i].Is(op)) {
      parts.push_back({part_begin, i});
      part_begin = i + 1;
    }
  }
  parts.push_back({part_begin, end});
  return parts;
}

void Normalize(const std::vector<Tok>& t, GuardFact fact,
               std::vector<GuardFact>* out) {
  // Strip outer parens and leading '!'.
  while (true) {
    if (WhollyParenthesized(t, fact.cond.begin, fact.cond.end)) {
      ++fact.cond.begin;
      --fact.cond.end;
      continue;
    }
    if (!fact.cond.Empty() && t[fact.cond.begin].Is("!") &&
        WhollyParenthesized(t, fact.cond.begin + 1, fact.cond.end)) {
      fact.polarity = !fact.polarity;
      fact.cond.begin += 2;
      --fact.cond.end;
      continue;
    }
    break;
  }
  if (fact.cond.Empty()) {
    return;
  }
  // `A && B` known true establishes both; `A || B` known false establishes
  // the negation of both (De Morgan). The other two combinations establish
  // nothing about the individual operands.
  const char* split_op = fact.polarity ? "&&" : "||";
  const char* blocked_op = fact.polarity ? "||" : "&&";
  const std::vector<TokRange> parts =
      SplitTopLevel(t, fact.cond.begin, fact.cond.end, split_op);
  if (parts.size() > 1) {
    for (const TokRange& part : parts) {
      Normalize(t, {part, fact.polarity}, out);
    }
    return;
  }
  // A top-level occurrence of the non-splittable operator keeps the fact
  // whole (the ballot-guard check handles true disjunctions per-disjunct).
  (void)blocked_op;
  out->push_back(fact);
}

}  // namespace

std::vector<GuardFact> NormalizeFact(const std::vector<Tok>& toks, GuardFact fact) {
  std::vector<GuardFact> out;
  Normalize(toks, fact, &out);
  return out;
}

}  // namespace opx::analyze
