// The v3 interprocedural checks of opx_analyze (DESIGN.md §16): wire-taint,
// index-arithmetic, and ref-lifetime. All three run over the project-wide
// call graph (callgraph.h) in bottom-up SCC order, so a callee's summary
// (which parameters it sinks, whether it stores a pointer parameter) exists
// before any caller is analyzed; functions on a cycle get a second round
// against their own first-round summaries.
//
// The taint model is label-based: bit 0 is "decoded from wire bytes", bit
// k+1 is "derived from parameter k". One forward scan per function computes
// gen (source calls, tainted assignments), kill (std::min clamps,
// OPX_CHECK_LE/LT/EQ assertions), and sink events in token order; findings
// are emitted for wire labels, summaries recorded for parameter labels.
// Sanitization is the cfg.h guard engine: a dominating comparison with the
// tainted identifier *alone* on the bounded side. `4 + len <= size` does
// not sanitize `len` — the addition wraps for len near 2^32, which is the
// exact client-decode bug this check was built to catch — and a comparison
// hidden behind a boolean flag (`ok = len <= kMax && ...; if (ok)`) is
// followed one level deep.
#include <algorithm>
#include <map>
#include <set>

#include "tools/analyze/analyzer.h"
#include "tools/analyze/callgraph.h"

namespace opx::analyze {

namespace {

bool UnderAnyDir(const std::string& path, const std::vector<std::string>& dirs) {
  for (const std::string& d : dirs) {
    if (path.size() > d.size() && path.compare(0, d.size(), d) == 0 &&
        path[d.size()] == '/') {
      return true;
    }
  }
  return false;
}

void Add(const SourceFile& sf, int line, const char* check, std::string key,
         std::string message, std::vector<Finding>* out) {
  if (sf.Suppressed(line, check)) {
    return;
  }
  Finding f;
  f.check = check;
  f.file = sf.path;
  f.line = line;
  f.key = std::move(key);
  f.message = std::move(message);
  out->push_back(std::move(f));
}

std::string OrdinalKey(const std::string& base, int ordinal) {
  return ordinal == 0 ? base : base + "#" + std::to_string(ordinal);
}

size_t MatchForward(const std::vector<Tok>& toks, size_t open, const char* opener,
                    const char* closer) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].Is(opener)) {
      ++depth;
    } else if (toks[i].Is(closer)) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

// First `;` at bracket depth 0 in [b, limit), or the `)`/`]`/`}` that closes
// an enclosing bracket — the end of the statement an expression belongs to.
size_t StmtEnd(const std::vector<Tok>& t, size_t b, size_t limit) {
  int depth = 0;
  for (size_t i = b; i < limit; ++i) {
    if (t[i].Is("(") || t[i].Is("[") || t[i].Is("{")) {
      ++depth;
    } else if (t[i].Is(")") || t[i].Is("]") || t[i].Is("}")) {
      if (depth == 0) {
        return i;
      }
      --depth;
    } else if (depth == 0 && (t[i].Is(";") || t[i].Is(","))) {
      return i;
    }
  }
  return limit;
}

// Top-level comma-separated argument ranges of the call whose `(` is at
// `open` and whose matching `)` is at `close`.
std::vector<TokRange> TopLevelArgs(const std::vector<Tok>& t, size_t open, size_t close) {
  std::vector<TokRange> args;
  size_t b = open + 1;
  int depth = 0;
  for (size_t i = open + 1; i <= close && i < t.size(); ++i) {
    if (i == close || (depth == 0 && t[i].Is(","))) {
      if (i > b) {
        args.push_back({b, i});
      }
      b = i + 1;
      if (i == close) {
        break;
      }
    } else if (t[i].Is("(") || t[i].Is("[") || t[i].Is("{")) {
      ++depth;
    } else if (t[i].Is(")") || t[i].Is("]") || t[i].Is("}")) {
      --depth;
    }
  }
  return args;
}

// Splits [b, e) on a top-level separator token (e.g. "&&"), never inside
// brackets.
std::vector<TokRange> SplitTopLevel(const std::vector<Tok>& t, size_t b, size_t e,
                                    const std::vector<std::string>& seps) {
  std::vector<TokRange> parts;
  size_t part = b;
  int depth = 0;
  for (size_t i = b; i < e; ++i) {
    if (t[i].Is("(") || t[i].Is("[") || t[i].Is("{")) {
      ++depth;
    } else if (t[i].Is(")") || t[i].Is("]") || t[i].Is("}")) {
      --depth;
    } else if (depth == 0 && Contains(seps, t[i].text)) {
      parts.push_back({part, i});
      part = i + 1;
    }
  }
  parts.push_back({part, e});
  return parts;
}

void StripParens(const std::vector<Tok>& t, size_t* b, size_t* e) {
  while (*e - *b >= 2 && t[*b].Is("(") && MatchForward(t, *b, "(", ")") == *e - 1) {
    ++*b;
    --*e;
  }
}

bool SideIsExactly(const std::vector<Tok>& t, size_t b, size_t e, const std::string& var) {
  StripParens(t, &b, &e);
  return e - b == 1 && t[b].IsIdent(var);
}

std::string MirrorOp(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  return op;  // == / != are symmetric
}

std::string NegateOp(const std::string& op) {
  if (op == "<") return ">=";
  if (op == "<=") return ">";
  if (op == ">") return "<=";
  if (op == ">=") return "<";
  if (op == "==") return "!=";
  return "==";  // !=
}

bool IsCastOrTemplateName(const std::string& s) {
  return s == "static_cast" || s == "reinterpret_cast" || s == "const_cast" ||
         s == "dynamic_cast" || s == "min" || s == "max" || s == "get" ||
         s == "numeric_limits";
}

// First top-level comparison operator in [b, e), skipping `<ident<...>(`
// template-argument angles. SIZE_MAX when none.
size_t FindTopLevelCmp(const std::vector<Tok>& t, size_t b, size_t e) {
  int depth = 0;
  for (size_t i = b; i < e; ++i) {
    if (t[i].Is("(") || t[i].Is("[")) {
      ++depth;
    } else if (t[i].Is(")") || t[i].Is("]")) {
      --depth;
    } else if (depth == 0 && t[i].Is("<") && i > b && t[i - 1].kind == TokKind::kIdent &&
               IsCastOrTemplateName(t[i - 1].text)) {
      // `static_cast<...>(x)` / `std::min<T>(...)`: skip the angle pair.
      int angle = 1;
      size_t j = i + 1;
      for (; j < e && angle > 0; ++j) {
        if (t[j].Is("<")) ++angle;
        if (t[j].Is(">")) --angle;
      }
      if (angle == 0) {
        i = j - 1;
      }
    } else if (depth == 0 && (t[i].Is("<") || t[i].Is("<=") || t[i].Is(">") ||
                              t[i].Is(">=") || t[i].Is("==") || t[i].Is("!="))) {
      return i;
    }
  }
  return static_cast<size_t>(-1);
}

bool RangeHasTopLevel(const std::vector<Tok>& t, size_t b, size_t e, const char* tok) {
  int depth = 0;
  for (size_t i = b; i < e; ++i) {
    if (t[i].Is("(") || t[i].Is("[") || t[i].Is("{")) {
      ++depth;
    } else if (t[i].Is(")") || t[i].Is("]") || t[i].Is("}")) {
      --depth;
    } else if (depth == 0 && t[i].Is(tok)) {
      return true;
    }
  }
  return false;
}

// Everything a sanitization query needs about the enclosing function.
struct FnCtx {
  const SourceFile* sf = nullptr;
  const FunctionDef* def = nullptr;
  const GuardIndex* guards = nullptr;
};

// Does the (sub)condition [b, e) with the given polarity establish an upper
// bound (or equality pin) on `var` standing alone on one comparison side?
// Recurses one level through a boolean flag: `ok = var <= kMax && ...` makes
// a dominating `if (ok)` sanitize var.
bool CmpSanitizes(const FnCtx& ctx, size_t b, size_t e, bool polarity,
                  const std::string& var, size_t before_tok, int depth) {
  const std::vector<Tok>& t = ctx.sf->toks;
  StripParens(t, &b, &e);
  if (b >= e) {
    return false;
  }
  const size_t cmp = FindTopLevelCmp(t, b, e);
  if (cmp != static_cast<size_t>(-1)) {
    std::string op;
    if (SideIsExactly(t, b, cmp, var)) {
      op = t[cmp].text;
    } else if (SideIsExactly(t, cmp + 1, e, var)) {
      op = MirrorOp(t[cmp].text);
    } else {
      return false;
    }
    if (!polarity) {
      op = NegateOp(op);
    }
    return op == "<" || op == "<=" || op == "==";
  }
  // Boolean-flag indirection: a single-identifier fact under true polarity —
  // find its last assignment before the sink and test each `&&` conjunct.
  if (depth >= 1 || !polarity || e - b != 1 || t[b].kind != TokKind::kIdent) {
    return false;
  }
  const std::string& flag = t[b].text;
  for (size_t j = std::min(before_tok, ctx.def->body_close); j-- > ctx.def->body_open;) {
    if (!t[j].IsIdent(flag) || j + 1 >= t.size() || !t[j + 1].Is("=") ||
        (j > 0 && (t[j - 1].Is(".") || t[j - 1].Is("->")))) {
      continue;
    }
    size_t rb = j + 2;
    const size_t re = StmtEnd(t, rb, ctx.def->body_close);
    if (RangeHasTopLevel(t, rb, re, "||")) {
      return false;  // a disjunction guarantees nothing about any conjunct
    }
    for (const TokRange& conj : SplitTopLevel(t, rb, re, {"&&"})) {
      if (CmpSanitizes(ctx, conj.begin, conj.end, true, var, before_tok, depth + 1)) {
        return true;
      }
    }
    return false;
  }
  return false;
}

// True when a guard fact dominating `tok` upper-bounds `var`.
bool BoundGuarded(const FnCtx& ctx, size_t tok, const std::string& var) {
  for (const GuardFact& raw : ctx.guards->FactsAtToken(tok)) {
    for (const GuardFact& atom : NormalizeFact(ctx.sf->toks, raw)) {
      if (CmpSanitizes(ctx, atom.cond.begin, atom.cond.end, atom.polarity, var, tok, 0)) {
        return true;
      }
    }
  }
  return false;
}

// --------------------------------------------------------------------------
// opx-wire-taint
// --------------------------------------------------------------------------

constexpr unsigned kWireBit = 1u;

unsigned ParamBit(size_t k) { return k + 1 < 32 ? 1u << (k + 1) : 0u; }

// Taint mask of an expression: the union over its non-member identifiers,
// plus the wire bit for any source call appearing inside it. Identifiers
// that are call names (followed by `(`) contribute nothing unless they are
// sources.
unsigned MaskOfRange(const std::vector<Tok>& t, size_t b, size_t e,
                     const std::map<std::string, unsigned>& taint,
                     const std::vector<std::string>& sources) {
  unsigned mask = 0;
  for (size_t i = b; i < e; ++i) {
    if (t[i].kind != TokKind::kIdent) {
      continue;
    }
    if (i > b && (t[i - 1].Is(".") || t[i - 1].Is("->"))) {
      continue;  // member name; the base identifier carries the taint
    }
    const bool is_call = i + 1 < e && t[i + 1].Is("(");
    if (is_call) {
      if (Contains(sources, t[i].text)) {
        mask |= kWireBit;
      }
      continue;
    }
    const auto it = taint.find(t[i].text);
    if (it != taint.end()) {
      mask |= it->second;
    }
  }
  return mask;
}

// One tainted-and-unguarded identifier from [b, e) with any of `want` bits,
// or "" — used to name the finding and to check sanitization per variable.
std::string OffendingIdent(const FnCtx& ctx, size_t b, size_t e, size_t sink_tok,
                           const std::map<std::string, unsigned>& taint, unsigned want,
                           const std::vector<std::string>& sources) {
  const std::vector<Tok>& t = ctx.sf->toks;
  for (size_t i = b; i < e; ++i) {
    if (t[i].kind != TokKind::kIdent || (i > b && (t[i - 1].Is(".") || t[i - 1].Is("->")))) {
      continue;
    }
    if (i + 1 < e && t[i + 1].Is("(")) {
      if ((want & kWireBit) != 0 && Contains(sources, t[i].text)) {
        return t[i].text;  // raw source call used directly in a sink argument
      }
      continue;
    }
    const auto it = taint.find(t[i].text);
    if (it == taint.end() || (it->second & want) == 0) {
      continue;
    }
    if (!BoundGuarded(ctx, sink_tok, t[i].text)) {
      return t[i].text;
    }
  }
  return "";
}

// Param-label bits of [b, e) whose identifiers are unguarded at sink_tok.
unsigned UnguardedParamBits(const FnCtx& ctx, size_t b, size_t e, size_t sink_tok,
                            const std::map<std::string, unsigned>& taint) {
  const std::vector<Tok>& t = ctx.sf->toks;
  unsigned bits = 0;
  for (size_t i = b; i < e; ++i) {
    if (t[i].kind != TokKind::kIdent || (i > b && (t[i - 1].Is(".") || t[i - 1].Is("->"))) ||
        (i + 1 < e && t[i + 1].Is("("))) {
      continue;
    }
    const auto it = taint.find(t[i].text);
    if (it == taint.end() || (it->second & ~kWireBit) == 0) {
      continue;
    }
    if (!BoundGuarded(ctx, sink_tok, t[i].text)) {
      bits |= it->second & ~kWireBit;
    }
  }
  return bits;
}

bool IsClampCall(const std::vector<Tok>& t, size_t b, size_t e) {
  StripParens(t, &b, &e);
  if (b < e && t[b].IsIdent("std") && b + 1 < e && t[b + 1].Is("::")) {
    b += 2;
  }
  return b < e && (t[b].IsIdent("min") || t[b].IsIdent("clamp"));
}

bool IsCheckKillMacro(const std::string& s) {
  return s == "OPX_CHECK_LE" || s == "OPX_CHECK_LT" || s == "OPX_CHECK_EQ" ||
         s == "OPX_DCHECK_LE" || s == "OPX_DCHECK_LT" || s == "OPX_DCHECK_EQ";
}

struct WireRun {
  unsigned sink_params = 0;
  std::vector<Finding> findings;
};

WireRun RunWireFn(const AnalyzerConfig& cfg, const CallGraph& cg, int fn_id,
                  const std::map<int, unsigned>& summaries) {
  WireRun run;
  const CgFunction& fn = cg.functions()[static_cast<size_t>(fn_id)];
  const std::vector<Tok>& t = fn.sf->toks;
  const Cfg body = Cfg::Build(*fn.sf, fn.def);
  const GuardIndex guards(body);
  const FnCtx ctx{fn.sf, &fn.def, &guards};
  static const char* kCheck = "opx-wire-taint";

  std::map<std::string, unsigned> taint;
  std::set<std::string> ptr_params;
  for (size_t k = 0; k < fn.def.params.size(); ++k) {
    const Param& p = fn.def.params[k];
    if (p.name.empty()) {
      continue;
    }
    taint[p.name] = ParamBit(k);
    if (p.type.find('*') != std::string::npos) {
      ptr_params.insert(p.name);
    }
  }

  std::map<size_t, const CallSite*> site_at;
  for (const CallSite& site : cg.calls()[static_cast<size_t>(fn_id)]) {
    site_at[site.tok] = &site;
  }

  std::map<std::string, int> ordinals;
  auto flag = [&](size_t tok, const std::string& var, const std::string& what) {
    const std::string base = fn.def.name + "/" + var;
    Add(*fn.sf, t[tok].line, kCheck, OrdinalKey(base, ordinals[base]++),
        fn.def.Display() + " uses wire-tainted `" + var + "` " + what +
            " without a dominating bounds check — a hostile or corrupt frame "
            "controls this value (clamp it, or guard with the bare value on "
            "one side of the comparison)",
        &run.findings);
  };

  for (size_t i = fn.def.body_open + 1; i < fn.def.body_close; ++i) {
    if (t[i].kind != TokKind::kIdent) {
      continue;
    }
    const std::string& id = t[i].text;
    const bool member_access = i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->"));

    // Assignment / declaration-with-init: strong update of the LHS mask.
    if (!member_access && i + 1 < fn.def.body_close && t[i + 1].Is("=") &&
        t[i + 1].kind == TokKind::kPunct) {
      const size_t eb = i + 2;
      const size_t ee = StmtEnd(t, eb, fn.def.body_close);
      if (IsClampCall(t, eb, ee)) {
        taint.erase(id);  // `x = std::min(x, bound)` — clamped, no longer hostile
      } else {
        const unsigned mask = MaskOfRange(t, eb, ee, taint, cfg.wire_taint.sources);
        if (mask == 0) {
          taint.erase(id);
        } else {
          taint[id] = mask;
        }
      }
      continue;
    }

    // Source call: every `&x` out-argument becomes wire-tainted.
    if (!member_access || Contains(cfg.wire_taint.sources, id)) {
      if (Contains(cfg.wire_taint.sources, id) && i + 1 < fn.def.body_close &&
          t[i + 1].Is("(")) {
        const size_t close = MatchForward(t, i + 1, "(", ")");
        for (const TokRange& arg : TopLevelArgs(t, i + 1, close)) {
          if (arg.end - arg.begin == 2 && t[arg.begin].Is("&") &&
              t[arg.begin + 1].kind == TokKind::kIdent) {
            taint[t[arg.begin + 1].text] |= kWireBit;
          }
        }
      }
    }

    // OPX_CHECK_LE(x, bound) and friends abort on violation: kill.
    if (IsCheckKillMacro(id) && i + 1 < fn.def.body_close && t[i + 1].Is("(")) {
      const size_t close = MatchForward(t, i + 1, "(", ")");
      const std::vector<TokRange> args = TopLevelArgs(t, i + 1, close);
      if (!args.empty() && args[0].end - args[0].begin == 1 &&
          t[args[0].begin].kind == TokKind::kIdent) {
        taint.erase(t[args[0].begin].text);
      }
      i = close;
      continue;
    }

    // Sink: resize/reserve/assign member calls, memcpy/memmove.
    const bool free_mem_fn = (id == "memcpy" || id == "memmove") && !member_access;
    if ((member_access || free_mem_fn) && Contains(cfg.wire_taint.sink_calls, id) &&
        i + 1 < fn.def.body_close && t[i + 1].Is("(")) {
      const size_t close = MatchForward(t, i + 1, "(", ")");
      for (const TokRange& arg : TopLevelArgs(t, i + 1, close)) {
        const std::string var = OffendingIdent(ctx, arg.begin, arg.end, i, taint,
                                               kWireBit, cfg.wire_taint.sources);
        if (!var.empty()) {
          flag(i, var, "as an argument of `" + id + "`");
          break;
        }
        run.sink_params |= UnguardedParamBits(ctx, arg.begin, arg.end, i, taint);
      }
      continue;
    }

    // Sink: subscript of a pointer parameter.
    if (!member_access && ptr_params.count(id) != 0 && i + 1 < fn.def.body_close &&
        t[i + 1].Is("[")) {
      const size_t close = MatchForward(t, i + 1, "[", "]");
      const std::string var = OffendingIdent(ctx, i + 2, close, i, taint, kWireBit,
                                             cfg.wire_taint.sources);
      if (!var.empty()) {
        flag(i, var, "as an index into pointer parameter `" + id + "`");
      } else {
        run.sink_params |= UnguardedParamBits(ctx, i + 2, close, i, taint);
      }
      continue;
    }

    // Sink: sole loop bound. Only an *unadorned* `i < tainted` counts — a
    // second conjunct means the author bounded the loop some other way.
    if (!member_access && (id == "for" || id == "while") && i + 1 < fn.def.body_close &&
        t[i + 1].Is("(")) {
      const size_t close = MatchForward(t, i + 1, "(", ")");
      size_t cb = i + 2;
      size_t ce = close;
      if (id == "for") {
        const std::vector<TokRange> clauses = SplitTopLevel(t, i + 2, close, {";"});
        if (clauses.size() < 2) {
          continue;
        }
        cb = clauses[1].begin;
        ce = clauses[1].end;
      }
      const std::vector<TokRange> conjs = SplitTopLevel(t, cb, ce, {"&&", "||"});
      if (conjs.size() != 1) {
        continue;
      }
      const size_t cmp = FindTopLevelCmp(t, cb, ce);
      if (cmp == static_cast<size_t>(-1)) {
        continue;
      }
      size_t sb = 0;
      size_t se = 0;
      if (t[cmp].Is("<") || t[cmp].Is("<=")) {
        sb = cmp + 1;
        se = ce;
      } else if (t[cmp].Is(">") || t[cmp].Is(">=")) {
        sb = cb;
        se = cmp;
      } else {
        continue;
      }
      StripParens(t, &sb, &se);
      if (se - sb != 1 || t[sb].kind != TokKind::kIdent) {
        continue;
      }
      const auto it = taint.find(t[sb].text);
      if (it == taint.end()) {
        continue;
      }
      // Facts are queried at the bound identifier, not the for/while keyword
      // — the keyword token belongs to no lowered block, so it would always
      // look unguarded.
      if ((it->second & kWireBit) != 0 && !BoundGuarded(ctx, sb, t[sb].text)) {
        flag(i, t[sb].text, "as the sole bound of this loop");
      } else if ((it->second & ~kWireBit) != 0 && !BoundGuarded(ctx, sb, t[sb].text)) {
        run.sink_params |= it->second & ~kWireBit;
      }
      continue;
    }

    // Interprocedural sink: a tainted argument in a position the callee's
    // summary says reaches a sink.
    const auto site_it = site_at.find(i);
    if (site_it != site_at.end()) {
      const CallSite& site = *site_it->second;
      const size_t close = MatchForward(t, i + 1, "(", ")");
      const std::vector<TokRange> args = TopLevelArgs(t, i + 1, close);
      for (size_t k = 0; k < args.size(); ++k) {
        unsigned callee_sinks = 0;
        for (const int callee : site.callees) {
          const auto s = summaries.find(callee);
          if (s != summaries.end()) {
            callee_sinks |= s->second;
          }
        }
        if ((callee_sinks & ParamBit(k)) == 0) {
          continue;
        }
        const std::string var = OffendingIdent(ctx, args[k].begin, args[k].end, i, taint,
                                               kWireBit, cfg.wire_taint.sources);
        if (!var.empty()) {
          flag(i, var,
               "as argument " + std::to_string(k + 1) + " of `" + site.name +
                   "`, which uses that parameter as an allocation size, index, "
                   "or loop bound");
        } else {
          const unsigned bits =
              UnguardedParamBits(ctx, args[k].begin, args[k].end, i, taint);
          run.sink_params |= bits;
        }
      }
    }
  }
  return run;
}

// Shared driver shape for the two summary-driven checks: bottom-up SCC
// order, a second round for functions on a cycle, findings kept from the
// final round only.
template <typename Run, typename RunFn>
void RunInterprocedural(const CallGraph& cg, RunFn run_fn, std::vector<Finding>* out) {
  std::map<int, unsigned> summaries;
  std::map<int, std::vector<Finding>> findings;
  for (const std::vector<int>& scc : cg.sccs()) {
    bool cyclic = scc.size() > 1;
    for (const int fn : scc) {
      cyclic = cyclic || cg.OnCycle(fn);
    }
    const int rounds = cyclic ? 2 : 1;
    for (int r = 0; r < rounds; ++r) {
      for (const int fn : scc) {
        Run run = run_fn(fn, summaries);
        summaries[fn] = run.sink_params;
        findings[fn] = std::move(run.findings);
      }
    }
  }
  for (auto& [fn, fs] : findings) {
    out->insert(out->end(), std::make_move_iterator(fs.begin()),
                std::make_move_iterator(fs.end()));
  }
}

std::vector<std::string> GatherPaths(FileSet& files, const std::vector<std::string>& dirs) {
  std::vector<std::string> paths;
  std::set<std::string> seen;
  for (const std::string& d : dirs) {
    for (std::string& p : files.ListDir(d)) {
      if (seen.insert(p).second) {
        paths.push_back(std::move(p));
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace

void CheckWireTaint(const AnalyzerConfig& cfg, FileSet& files, std::vector<Finding>* out,
                    int* nfiles, std::vector<std::string>* /*errors*/) {
  const std::vector<std::string> paths = GatherPaths(files, cfg.wire_taint.dirs);
  for (const std::string& p : paths) {
    *nfiles += files.Get(p) != nullptr ? 1 : 0;
  }
  const CallGraph cg = CallGraph::Build(files, paths);
  RunInterprocedural<WireRun>(
      cg,
      [&](int fn, const std::map<int, unsigned>& summaries) {
        return RunWireFn(cfg, cg, fn, summaries);
      },
      out);
}

// --------------------------------------------------------------------------
// opx-index-arith
// --------------------------------------------------------------------------

void CheckIndexArith(const AnalyzerConfig& cfg, FileSet& files, std::vector<Finding>* out,
                     int* nfiles, std::vector<std::string>* /*errors*/) {
  static const char* kCheck = "opx-index-arith";
  const std::vector<std::string> paths = GatherPaths(files, cfg.index_arith.dirs);
  for (const std::string& path : paths) {
    const SourceFile* sf = files.Get(path);
    if (sf == nullptr) {
      continue;
    }
    ++*nfiles;
    if (path == cfg.index_arith.helper_file) {
      continue;  // the sanctioned implementation
    }
    const std::vector<Tok>& t = sf->toks;

    // OPX_CHECK*/OPX_DCHECK* argument ranges are the bounds enforcement
    // itself — arithmetic there is the checked helper's own idiom.
    std::vector<TokRange> exempt;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind == TokKind::kIdent && t[i + 1].Is("(") &&
          (t[i].text.rfind("OPX_CHECK", 0) == 0 || t[i].text.rfind("OPX_DCHECK", 0) == 0)) {
        exempt.push_back({i, MatchForward(t, i + 1, "(", ")")});
      }
    }
    auto exempted = [&](size_t i) {
      for (const TokRange& r : exempt) {
        if (i >= r.begin && i <= r.end) {
          return true;
        }
      }
      return false;
    };
    auto is_plus_minus = [&](size_t i) { return t[i].Is("+") || t[i].Is("-"); };

    std::map<std::string, int> ordinals;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent || !Contains(cfg.index_arith.floor_idents, t[i].text)) {
        continue;
      }
      // Full floor expression: back over the object chain (`storage_->`),
      // forward over a no-arg accessor call (`compacted_idx()`).
      size_t begin = i;
      while (begin >= 2 && (t[begin - 1].Is("::") || t[begin - 1].Is(".") ||
                            t[begin - 1].Is("->")) &&
             t[begin - 2].kind == TokKind::kIdent) {
        begin -= 2;
      }
      size_t end = i;
      if (i + 2 < t.size() && t[i + 1].Is("(") && t[i + 2].Is(")")) {
        end = i + 2;
      }
      // `floor + x` / `floor - x` — but not ++/--/+=/-=.
      const bool arith_after =
          end + 1 < t.size() && is_plus_minus(end + 1) &&
          !(end + 2 < t.size() && (is_plus_minus(end + 2) || t[end + 2].Is("=")));
      // `x + floor` / `x - floor` — but not ++/--.
      const bool arith_before =
          begin >= 1 && is_plus_minus(begin - 1) && !(begin >= 2 && is_plus_minus(begin - 2));
      if ((!arith_after && !arith_before) || exempted(i)) {
        continue;
      }
      Add(*sf, t[i].line, kCheck, OrdinalKey(t[i].text, ordinals[t[i].text]++),
          "raw log-index arithmetic against compaction floor `" + t[i].text +
              "` — the PR 8 seed-bug shape; use util::FloorOffset / "
              "util::IndexEnd / util::IndexBack (src/util/log_index.h), which "
              "abort on wrap instead of corrupting memory",
          out);
    }
  }
}

// --------------------------------------------------------------------------
// opx-ref-lifetime
// --------------------------------------------------------------------------

namespace {

struct RefRun {
  unsigned sink_params = 0;  // bit k+1: pointer parameter k stored into a member
  std::vector<Finding> findings;
};

bool IsMemberIdent(const std::vector<Tok>& t, size_t i) {
  if (t[i].kind != TokKind::kIdent || t[i].text.empty()) {
    return false;
  }
  if (i >= 2 && t[i - 1].Is("->") && t[i - 2].IsIdent("this")) {
    return true;
  }
  if (i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->"))) {
    return false;  // member of some other object
  }
  return t[i].text.back() == '_';
}

bool IsMemberMutator(const std::string& s) {
  return s == "push_back" || s == "emplace_back" || s == "insert" || s == "emplace" ||
         s == "assign";
}

RefRun RunRefFn(const AnalyzerConfig& cfg, const CallGraph& cg, int fn_id,
                const std::map<int, unsigned>& summaries) {
  RefRun run;
  const CgFunction& fn = cg.functions()[static_cast<size_t>(fn_id)];
  const std::vector<Tok>& t = fn.sf->toks;
  static const char* kCheck = "opx-ref-lifetime";

  // Refcounted-view variables: parameters typed as one of ref_types, plus
  // locals declared `FrameRef f = ...` / `const FrameRef& f = ...`.
  std::set<std::string> refvars;
  std::map<std::string, size_t> ptr_params;  // name -> param index
  for (size_t k = 0; k < fn.def.params.size(); ++k) {
    const Param& p = fn.def.params[k];
    if (p.name.empty()) {
      continue;
    }
    for (const std::string& rt : cfg.ref_lifetime.ref_types) {
      if (p.type.find(rt) != std::string::npos) {
        refvars.insert(p.name);
      }
    }
    if (p.type.find('*') != std::string::npos) {
      ptr_params[p.name] = k;
    }
  }
  for (size_t i = fn.def.body_open + 1; i < fn.def.body_close; ++i) {
    if (t[i].kind != TokKind::kIdent || !Contains(cfg.ref_lifetime.ref_types, t[i].text) ||
        (i > 0 && (t[i - 1].Is("<") || t[i - 1].Is("::")))) {
      continue;
    }
    size_t j = i + 1;
    while (j < fn.def.body_close &&
           (t[j].Is("&") || t[j].Is("*") || t[j].IsIdent("const"))) {
      ++j;
    }
    if (j < fn.def.body_close && t[j].kind == TokKind::kIdent && j + 1 < fn.def.body_close &&
        (t[j + 1].Is("=") || t[j + 1].Is(";") || t[j + 1].Is("(") || t[j + 1].Is("{"))) {
      refvars.insert(t[j].text);
    }
  }

  // derived raw pointer -> the refvars it came from (empty set: unknown/any).
  std::map<std::string, std::set<std::string>> derived;
  std::set<std::string> invalidated;

  auto expr_refs = [&](size_t b, size_t e, std::set<std::string>* srcs) {
    // Does [b, e) reach into a refcounted frame's storage? Either a known
    // derived pointer, or a refvar together with a `.data()` call —
    // `f->bytes.size()` produces a plain integer, not a view, so `data` is
    // the discriminator.
    bool has_ref = false;
    bool has_data = false;
    bool has_derived = false;
    for (size_t i = b; i < e; ++i) {
      if (t[i].kind != TokKind::kIdent) {
        continue;
      }
      if (t[i].text == "data") {
        has_data = true;
      }
      if (i > b && (t[i - 1].Is(".") || t[i - 1].Is("->"))) {
        continue;
      }
      if (refvars.count(t[i].text) != 0) {
        has_ref = true;
        if (srcs != nullptr) {
          srcs->insert(t[i].text);
        }
      }
      const auto d = derived.find(t[i].text);
      if (d != derived.end()) {
        has_derived = true;
        if (srcs != nullptr) {
          srcs->insert(d->second.begin(), d->second.end());
        }
      }
    }
    return has_derived || (has_ref && has_data);
  };
  auto expr_ptr_param_bits = [&](size_t b, size_t e) {
    unsigned bits = 0;
    for (size_t i = b; i < e; ++i) {
      if (t[i].kind == TokKind::kIdent && !(i > b && (t[i - 1].Is(".") || t[i - 1].Is("->"))) &&
          !(i + 1 < e && t[i + 1].Is("("))) {
        const auto it = ptr_params.find(t[i].text);
        if (it != ptr_params.end()) {
          bits |= ParamBit(it->second);
        }
      }
    }
    return bits;
  };

  std::map<size_t, const CallSite*> site_at;
  for (const CallSite& site : cg.calls()[static_cast<size_t>(fn_id)]) {
    site_at[site.tok] = &site;
  }

  std::map<std::string, int> ordinals;
  auto flag = [&](size_t tok, const std::string& var, const std::string& message) {
    const std::string base = fn.def.name + "/" + var;
    Add(*fn.sf, t[tok].line, kCheck, OrdinalKey(base, ordinals[base]++),
        fn.def.Display() + " " + message, &run.findings);
  };

  for (size_t i = fn.def.body_open + 1; i < fn.def.body_close; ++i) {
    if (t[i].kind != TokKind::kIdent) {
      continue;
    }
    const std::string& id = t[i].text;
    const bool member_access = i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->"));

    // Assignments: member stores are findings, local stores track derivation.
    if (i + 1 < fn.def.body_close && t[i + 1].Is("=") && t[i + 1].kind == TokKind::kPunct &&
        (!member_access || IsMemberIdent(t, i))) {
      const size_t eb = i + 2;
      const size_t ee = StmtEnd(t, eb, fn.def.body_close);
      std::set<std::string> srcs;
      const bool derives = expr_refs(eb, ee, &srcs);
      if (IsMemberIdent(t, i)) {
        if (derives) {
          const std::string src = srcs.empty() ? "frame" : *srcs.begin();
          flag(i, src,
               "stores a raw pointer derived from refcounted frame `" + src +
                   "` into member `" + id +
                   "` — the member outlives the frame's refcount; store the "
                   "FrameRef itself (or copy the bytes) instead");
        }
        const unsigned bits = expr_ptr_param_bits(eb, ee);
        run.sink_params |= bits;
      } else {
        if (derives) {
          derived[id] = std::move(srcs);
          invalidated.erase(id);
        } else if (derived.count(id) != 0) {
          derived.erase(id);
          invalidated.erase(id);
        }
      }
      continue;
    }

    // Member-container mutation with a frame-derived argument.
    if (IsMemberIdent(t, i) && i + 3 < fn.def.body_close &&
        (t[i + 1].Is(".") || t[i + 1].Is("->")) && IsMemberMutator(t[i + 2].text) &&
        t[i + 3].Is("(")) {
      const size_t close = MatchForward(t, i + 3, "(", ")");
      std::set<std::string> srcs;
      if (expr_refs(i + 4, close, &srcs)) {
        const std::string src = srcs.empty() ? "frame" : *srcs.begin();
        flag(i, src,
             "inserts a raw pointer derived from refcounted frame `" + src +
                 "` into member container `" + id +
                 "` — the container outlives the frame's refcount");
      }
      run.sink_params |= expr_ptr_param_bits(i + 4, close);
      continue;
    }

    // Invalidator call: FramePool::Clear / Release / queue Consume. Derived
    // pointers into the released frames are dangling from here on.
    if ((member_access || (i > 0 && t[i - 1].Is("::"))) &&
        Contains(cfg.ref_lifetime.invalidators, id) && i + 1 < fn.def.body_close &&
        t[i + 1].Is("(")) {
      const size_t close = MatchForward(t, i + 1, "(", ")");
      std::set<std::string> released;
      for (size_t j = i + 2; j < close; ++j) {
        if (t[j].kind == TokKind::kIdent && refvars.count(t[j].text) != 0) {
          released.insert(t[j].text);
        }
      }
      for (const auto& [name, srcs] : derived) {
        const bool hit =
            released.empty() || srcs.empty() ||
            std::any_of(released.begin(), released.end(),
                        [&](const std::string& r) { return srcs.count(r) != 0; });
        if (hit) {
          invalidated.insert(name);
        }
      }
      i = close;
      continue;
    }

    // Use of a dangling derived pointer.
    if (!member_access && invalidated.count(id) != 0) {
      flag(i, id,
           "uses frame-derived pointer `" + id +
               "` after the pool/queue invalidated it (Clear/Release/Consume "
               "releases the backing frame)");
      invalidated.erase(id);  // one finding per variable
      continue;
    }

    // Interprocedural: frame-derived pointer handed to a callee that stores
    // its pointer parameter into a member.
    const auto site_it = site_at.find(i);
    if (site_it != site_at.end() && !site_it->second->callees.empty()) {
      const CallSite& site = *site_it->second;
      const size_t close = MatchForward(t, i + 1, "(", ")");
      const std::vector<TokRange> args = TopLevelArgs(t, i + 1, close);
      for (size_t k = 0; k < args.size(); ++k) {
        unsigned callee_stores = 0;
        for (const int callee : site.callees) {
          const auto s = summaries.find(callee);
          if (s != summaries.end()) {
            callee_stores |= s->second;
          }
        }
        if ((callee_stores & ParamBit(k)) == 0) {
          continue;
        }
        std::set<std::string> srcs;
        if (expr_refs(args[k].begin, args[k].end, &srcs)) {
          const std::string src = srcs.empty() ? "frame" : *srcs.begin();
          flag(i, src,
               "passes a pointer derived from refcounted frame `" + src + "` to `" +
                   site.name + "`, which stores its parameter into a member");
        }
        run.sink_params |= expr_ptr_param_bits(args[k].begin, args[k].end);
      }
    }
  }
  return run;
}

}  // namespace

void CheckRefLifetime(const AnalyzerConfig& cfg, FileSet& files, std::vector<Finding>* out,
                      int* nfiles, std::vector<std::string>* /*errors*/) {
  const std::vector<std::string> paths = GatherPaths(files, cfg.ref_lifetime.dirs);
  for (const std::string& p : paths) {
    *nfiles += files.Get(p) != nullptr ? 1 : 0;
  }
  const CallGraph cg = CallGraph::Build(files, paths);
  RunInterprocedural<RefRun>(
      cg,
      [&](int fn, const std::map<int, unsigned>& summaries) {
        return RunRefFn(cfg, cg, fn, summaries);
      },
      out);
}

}  // namespace opx::analyze
