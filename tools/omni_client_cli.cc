// omni_client — command-line client for a running omni_node cluster.
//
//   omni_client --servers=1=127.0.0.1:7001,2=127.0.0.1:7002 --count=100
//   omni_client --servers=... --status
#include <chrono>
#include <cstdio>
#include <string>

#include "src/net/omni_client.h"
#include "src/util/flags.h"

namespace {

bool ParseServers(const std::string& spec, std::map<opx::NodeId, opx::net::Endpoint>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(pos, comma - pos);
    const size_t eq = item.find('=');
    const size_t colon = item.rfind(':');
    if (eq == std::string::npos || colon == std::string::npos || colon < eq) {
      return false;
    }
    opx::net::Endpoint endpoint;
    endpoint.host = item.substr(eq + 1, colon - eq - 1);
    endpoint.port = static_cast<uint16_t>(std::stoi(item.substr(colon + 1)));
    (*out)[static_cast<opx::NodeId>(std::stoi(item.substr(0, eq)))] = endpoint;
    pos = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opx;
  Flags flags(argc, argv);
  std::map<NodeId, net::Endpoint> servers;
  if (flags.GetBool("help", false) ||
      !ParseServers(flags.GetString("servers", ""), &servers)) {
    std::printf(
        "usage: omni_client --servers=ID=HOST:PORT,... [--count=N] [--status]\n");
    return flags.GetBool("help", false) ? 0 : 2;
  }

  net::OmniClient client(std::move(servers));
  if (!client.Connect()) {
    std::fprintf(stderr, "omni_client: no server reachable\n");
    return 1;
  }
  std::printf("connected to server %d\n", client.connected_to());

  if (flags.GetBool("status", false)) {
    net::OmniClient::Status status;
    if (!client.GetStatus(&status)) {
      std::fprintf(stderr, "omni_client: status request failed\n");
      return 1;
    }
    std::printf("leader=s%d decided=%lu log_len=%lu (this server leads: %s)\n",
                status.leader, status.decided, status.log_len,
                status.is_leader ? "yes" : "no");
    return 0;
  }

  const int count = static_cast<int>(flags.GetInt("count", 10));
  const auto start = std::chrono::steady_clock::now();
  for (int i = 1; i <= count; ++i) {
    if (!client.AppendAndWait(static_cast<uint64_t>(i), 8, Seconds(10))) {
      std::fprintf(stderr, "omni_client: command %d not decided in time\n", i);
      return 1;
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  std::printf("replicated %d commands in %.3f s (%.0f cmds/s, decided acks from s%d)\n",
              count, secs, count / secs, client.connected_to());
  return 0;
}
