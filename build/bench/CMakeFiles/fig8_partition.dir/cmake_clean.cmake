file(REMOVE_RECURSE
  "CMakeFiles/fig8_partition.dir/fig8_partition.cc.o"
  "CMakeFiles/fig8_partition.dir/fig8_partition.cc.o.d"
  "fig8_partition"
  "fig8_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
