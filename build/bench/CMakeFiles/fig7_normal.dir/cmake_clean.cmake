file(REMOVE_RECURSE
  "CMakeFiles/fig7_normal.dir/fig7_normal.cc.o"
  "CMakeFiles/fig7_normal.dir/fig7_normal.cc.o.d"
  "fig7_normal"
  "fig7_normal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_normal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
