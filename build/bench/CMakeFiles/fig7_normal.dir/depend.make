# Empty dependencies file for fig7_normal.
# This may be replaced when dependencies are built.
