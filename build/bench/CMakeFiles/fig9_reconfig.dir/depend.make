# Empty dependencies file for fig9_reconfig.
# This may be replaced when dependencies are built.
