file(REMOVE_RECURSE
  "CMakeFiles/fig9_reconfig.dir/fig9_reconfig.cc.o"
  "CMakeFiles/fig9_reconfig.dir/fig9_reconfig.cc.o.d"
  "fig9_reconfig"
  "fig9_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
