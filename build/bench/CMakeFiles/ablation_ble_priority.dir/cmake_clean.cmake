file(REMOVE_RECURSE
  "CMakeFiles/ablation_ble_priority.dir/ablation_ble_priority.cc.o"
  "CMakeFiles/ablation_ble_priority.dir/ablation_ble_priority.cc.o.d"
  "ablation_ble_priority"
  "ablation_ble_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ble_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
