# Empty dependencies file for ablation_ble_priority.
# This may be replaced when dependencies are built.
