
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ble_test.cc" "tests/CMakeFiles/opx_tests.dir/ble_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/ble_test.cc.o.d"
  "/root/repo/tests/client_test.cc" "tests/CMakeFiles/opx_tests.dir/client_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/client_test.cc.o.d"
  "/root/repo/tests/cluster_sim_test.cc" "tests/CMakeFiles/opx_tests.dir/cluster_sim_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/cluster_sim_test.cc.o.d"
  "/root/repo/tests/codec_test.cc" "tests/CMakeFiles/opx_tests.dir/codec_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/codec_test.cc.o.d"
  "/root/repo/tests/durable_storage_test.cc" "tests/CMakeFiles/opx_tests.dir/durable_storage_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/durable_storage_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/opx_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/kv_store_test.cc" "tests/CMakeFiles/opx_tests.dir/kv_store_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/kv_store_test.cc.o.d"
  "/root/repo/tests/local_cluster_test.cc" "tests/CMakeFiles/opx_tests.dir/local_cluster_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/local_cluster_test.cc.o.d"
  "/root/repo/tests/multipaxos_test.cc" "tests/CMakeFiles/opx_tests.dir/multipaxos_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/multipaxos_test.cc.o.d"
  "/root/repo/tests/multipaxos_unit_test.cc" "tests/CMakeFiles/opx_tests.dir/multipaxos_unit_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/multipaxos_unit_test.cc.o.d"
  "/root/repo/tests/omni_paxos_test.cc" "tests/CMakeFiles/opx_tests.dir/omni_paxos_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/omni_paxos_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/opx_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/raft_test.cc" "tests/CMakeFiles/opx_tests.dir/raft_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/raft_test.cc.o.d"
  "/root/repo/tests/raft_unit_test.cc" "tests/CMakeFiles/opx_tests.dir/raft_unit_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/raft_unit_test.cc.o.d"
  "/root/repo/tests/reconfig_test.cc" "tests/CMakeFiles/opx_tests.dir/reconfig_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/reconfig_test.cc.o.d"
  "/root/repo/tests/scenario_sweep_test.cc" "tests/CMakeFiles/opx_tests.dir/scenario_sweep_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/scenario_sweep_test.cc.o.d"
  "/root/repo/tests/sequence_paxos_test.cc" "tests/CMakeFiles/opx_tests.dir/sequence_paxos_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/sequence_paxos_test.cc.o.d"
  "/root/repo/tests/sequence_paxos_unit_test.cc" "tests/CMakeFiles/opx_tests.dir/sequence_paxos_unit_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/sequence_paxos_unit_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/opx_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/opx_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/tcp_runtime_test.cc" "tests/CMakeFiles/opx_tests.dir/tcp_runtime_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/tcp_runtime_test.cc.o.d"
  "/root/repo/tests/trim_test.cc" "tests/CMakeFiles/opx_tests.dir/trim_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/trim_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/opx_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/vr_chaos_test.cc" "tests/CMakeFiles/opx_tests.dir/vr_chaos_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/vr_chaos_test.cc.o.d"
  "/root/repo/tests/vr_test.cc" "tests/CMakeFiles/opx_tests.dir/vr_test.cc.o" "gcc" "tests/CMakeFiles/opx_tests.dir/vr_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/opx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rsm/CMakeFiles/opx_rsm.dir/DependInfo.cmake"
  "/root/repo/build/src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/opx_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/multipaxos/CMakeFiles/opx_multipaxos.dir/DependInfo.cmake"
  "/root/repo/build/src/vr/CMakeFiles/opx_vr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
