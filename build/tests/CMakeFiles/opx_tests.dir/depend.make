# Empty dependencies file for opx_tests.
# This may be replaced when dependencies are built.
