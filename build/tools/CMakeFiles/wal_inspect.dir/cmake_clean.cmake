file(REMOVE_RECURSE
  "CMakeFiles/wal_inspect.dir/wal_inspect.cc.o"
  "CMakeFiles/wal_inspect.dir/wal_inspect.cc.o.d"
  "wal_inspect"
  "wal_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
