# Empty compiler generated dependencies file for wal_inspect.
# This may be replaced when dependencies are built.
