# Empty dependencies file for omni_node.
# This may be replaced when dependencies are built.
