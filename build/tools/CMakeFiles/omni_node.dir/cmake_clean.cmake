file(REMOVE_RECURSE
  "CMakeFiles/omni_node.dir/omni_node.cc.o"
  "CMakeFiles/omni_node.dir/omni_node.cc.o.d"
  "omni_node"
  "omni_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omni_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
