# Empty compiler generated dependencies file for omni_client.
# This may be replaced when dependencies are built.
