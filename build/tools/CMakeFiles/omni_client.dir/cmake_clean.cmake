file(REMOVE_RECURSE
  "CMakeFiles/omni_client.dir/omni_client_cli.cc.o"
  "CMakeFiles/omni_client.dir/omni_client_cli.cc.o.d"
  "omni_client"
  "omni_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omni_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
