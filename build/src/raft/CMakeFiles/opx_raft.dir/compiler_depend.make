# Empty compiler generated dependencies file for opx_raft.
# This may be replaced when dependencies are built.
