file(REMOVE_RECURSE
  "libopx_raft.a"
)
