file(REMOVE_RECURSE
  "CMakeFiles/opx_raft.dir/raft.cc.o"
  "CMakeFiles/opx_raft.dir/raft.cc.o.d"
  "libopx_raft.a"
  "libopx_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opx_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
