file(REMOVE_RECURSE
  "CMakeFiles/opx_util.dir/logging.cc.o"
  "CMakeFiles/opx_util.dir/logging.cc.o.d"
  "CMakeFiles/opx_util.dir/stats.cc.o"
  "CMakeFiles/opx_util.dir/stats.cc.o.d"
  "libopx_util.a"
  "libopx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
