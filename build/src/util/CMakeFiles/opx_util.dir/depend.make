# Empty dependencies file for opx_util.
# This may be replaced when dependencies are built.
