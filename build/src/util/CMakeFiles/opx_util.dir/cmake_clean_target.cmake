file(REMOVE_RECURSE
  "libopx_util.a"
)
