
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/omni_client.cc" "src/net/CMakeFiles/opx_net.dir/omni_client.cc.o" "gcc" "src/net/CMakeFiles/opx_net.dir/omni_client.cc.o.d"
  "/root/repo/src/net/omni_tcp_server.cc" "src/net/CMakeFiles/opx_net.dir/omni_tcp_server.cc.o" "gcc" "src/net/CMakeFiles/opx_net.dir/omni_tcp_server.cc.o.d"
  "/root/repo/src/net/tcp_transport.cc" "src/net/CMakeFiles/opx_net.dir/tcp_transport.cc.o" "gcc" "src/net/CMakeFiles/opx_net.dir/tcp_transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
