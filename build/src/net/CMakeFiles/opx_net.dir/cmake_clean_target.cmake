file(REMOVE_RECURSE
  "libopx_net.a"
)
