# Empty dependencies file for opx_net.
# This may be replaced when dependencies are built.
