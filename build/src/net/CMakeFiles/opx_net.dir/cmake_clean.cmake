file(REMOVE_RECURSE
  "CMakeFiles/opx_net.dir/omni_client.cc.o"
  "CMakeFiles/opx_net.dir/omni_client.cc.o.d"
  "CMakeFiles/opx_net.dir/omni_tcp_server.cc.o"
  "CMakeFiles/opx_net.dir/omni_tcp_server.cc.o.d"
  "CMakeFiles/opx_net.dir/tcp_transport.cc.o"
  "CMakeFiles/opx_net.dir/tcp_transport.cc.o.d"
  "libopx_net.a"
  "libopx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
