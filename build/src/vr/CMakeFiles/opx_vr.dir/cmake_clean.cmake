file(REMOVE_RECURSE
  "CMakeFiles/opx_vr.dir/vr_election.cc.o"
  "CMakeFiles/opx_vr.dir/vr_election.cc.o.d"
  "libopx_vr.a"
  "libopx_vr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opx_vr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
