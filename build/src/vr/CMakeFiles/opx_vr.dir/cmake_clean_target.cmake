file(REMOVE_RECURSE
  "libopx_vr.a"
)
