# Empty dependencies file for opx_vr.
# This may be replaced when dependencies are built.
