file(REMOVE_RECURSE
  "libopx_multipaxos.a"
)
