file(REMOVE_RECURSE
  "CMakeFiles/opx_multipaxos.dir/multipaxos.cc.o"
  "CMakeFiles/opx_multipaxos.dir/multipaxos.cc.o.d"
  "libopx_multipaxos.a"
  "libopx_multipaxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opx_multipaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
