# Empty compiler generated dependencies file for opx_multipaxos.
# This may be replaced when dependencies are built.
