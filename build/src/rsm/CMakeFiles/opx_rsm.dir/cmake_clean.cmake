file(REMOVE_RECURSE
  "CMakeFiles/opx_rsm.dir/client.cc.o"
  "CMakeFiles/opx_rsm.dir/client.cc.o.d"
  "CMakeFiles/opx_rsm.dir/scenarios.cc.o"
  "CMakeFiles/opx_rsm.dir/scenarios.cc.o.d"
  "libopx_rsm.a"
  "libopx_rsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opx_rsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
