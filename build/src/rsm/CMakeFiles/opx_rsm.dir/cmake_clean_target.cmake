file(REMOVE_RECURSE
  "libopx_rsm.a"
)
