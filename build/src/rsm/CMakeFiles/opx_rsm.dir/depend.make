# Empty dependencies file for opx_rsm.
# This may be replaced when dependencies are built.
