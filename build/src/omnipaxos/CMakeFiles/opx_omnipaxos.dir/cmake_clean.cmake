file(REMOVE_RECURSE
  "CMakeFiles/opx_omnipaxos.dir/ble.cc.o"
  "CMakeFiles/opx_omnipaxos.dir/ble.cc.o.d"
  "CMakeFiles/opx_omnipaxos.dir/codec.cc.o"
  "CMakeFiles/opx_omnipaxos.dir/codec.cc.o.d"
  "CMakeFiles/opx_omnipaxos.dir/durable_storage.cc.o"
  "CMakeFiles/opx_omnipaxos.dir/durable_storage.cc.o.d"
  "CMakeFiles/opx_omnipaxos.dir/omni_paxos.cc.o"
  "CMakeFiles/opx_omnipaxos.dir/omni_paxos.cc.o.d"
  "CMakeFiles/opx_omnipaxos.dir/sequence_paxos.cc.o"
  "CMakeFiles/opx_omnipaxos.dir/sequence_paxos.cc.o.d"
  "libopx_omnipaxos.a"
  "libopx_omnipaxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opx_omnipaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
