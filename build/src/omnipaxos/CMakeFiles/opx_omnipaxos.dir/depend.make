# Empty dependencies file for opx_omnipaxos.
# This may be replaced when dependencies are built.
