
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omnipaxos/ble.cc" "src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/ble.cc.o" "gcc" "src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/ble.cc.o.d"
  "/root/repo/src/omnipaxos/codec.cc" "src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/codec.cc.o" "gcc" "src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/codec.cc.o.d"
  "/root/repo/src/omnipaxos/durable_storage.cc" "src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/durable_storage.cc.o" "gcc" "src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/durable_storage.cc.o.d"
  "/root/repo/src/omnipaxos/omni_paxos.cc" "src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/omni_paxos.cc.o" "gcc" "src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/omni_paxos.cc.o.d"
  "/root/repo/src/omnipaxos/sequence_paxos.cc" "src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/sequence_paxos.cc.o" "gcc" "src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/sequence_paxos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/opx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
