file(REMOVE_RECURSE
  "libopx_omnipaxos.a"
)
