# Empty compiler generated dependencies file for kv_bank.
# This may be replaced when dependencies are built.
