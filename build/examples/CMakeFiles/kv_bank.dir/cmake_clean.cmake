file(REMOVE_RECURSE
  "CMakeFiles/kv_bank.dir/kv_bank.cpp.o"
  "CMakeFiles/kv_bank.dir/kv_bank.cpp.o.d"
  "kv_bank"
  "kv_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
