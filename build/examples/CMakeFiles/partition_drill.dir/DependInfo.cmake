
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/partition_drill.cpp" "examples/CMakeFiles/partition_drill.dir/partition_drill.cpp.o" "gcc" "examples/CMakeFiles/partition_drill.dir/partition_drill.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rsm/CMakeFiles/opx_rsm.dir/DependInfo.cmake"
  "/root/repo/build/src/omnipaxos/CMakeFiles/opx_omnipaxos.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/opx_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/multipaxos/CMakeFiles/opx_multipaxos.dir/DependInfo.cmake"
  "/root/repo/build/src/vr/CMakeFiles/opx_vr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
