# Empty compiler generated dependencies file for reconfig_rolling.
# This may be replaced when dependencies are built.
