file(REMOVE_RECURSE
  "CMakeFiles/reconfig_rolling.dir/reconfig_rolling.cpp.o"
  "CMakeFiles/reconfig_rolling.dir/reconfig_rolling.cpp.o.d"
  "reconfig_rolling"
  "reconfig_rolling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_rolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
