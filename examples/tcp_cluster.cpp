// tcp_cluster — a real Omni-Paxos cluster over actual TCP sockets, in one
// process: three OmniTcpServer instances (each with its own event-loop
// thread and WAL), driven by the blocking OmniClient. The same servers run
// as separate processes via tools/omni_node.
//
//   $ ./tcp_cluster
#include <atomic>
#include <cstdio>
#include <thread>

#include "src/net/omni_client.h"
#include "src/net/omni_tcp_server.h"

int main() {
  using namespace opx;

  std::printf("== Omni-Paxos over real TCP ==\n\n");

  const uint16_t base = static_cast<uint16_t>(17000 + (getpid() % 10000));
  std::map<NodeId, net::Endpoint> endpoints;
  for (NodeId id = 1; id <= 3; ++id) {
    endpoints[id] = net::Endpoint{"127.0.0.1", static_cast<uint16_t>(base + id)};
  }

  struct ServerSlot {
    std::unique_ptr<net::OmniTcpServer> server;
    std::thread thread;
    std::atomic<bool> stop{false};
  };
  ServerSlot slots[4];

  auto start = [&](NodeId id) {
    net::ServerOptions options;
    options.id = id;
    options.listen_port = endpoints[id].port;
    options.election_timeout = Millis(50);
    options.ble_priority = id == 1 ? 1 : 0;
    options.wal_path = "/tmp/tcp_cluster_node" + std::to_string(id) + ".wal";
    std::remove(options.wal_path.c_str());
    for (NodeId peer = 1; peer <= 3; ++peer) {
      if (peer != id) {
        options.peers[peer] = endpoints[peer];
      }
    }
    ServerSlot& slot = slots[id];
    slot.server = std::make_unique<net::OmniTcpServer>(options);
    if (!slot.server->Start()) {
      std::fprintf(stderr, "cannot bind port %u\n", options.listen_port);
      exit(1);
    }
    slot.thread = std::thread([&slot]() { slot.server->Run(slot.stop); });
    std::printf("server %d listening on 127.0.0.1:%u (wal: %s)\n", id,
                options.listen_port, options.wal_path.c_str());
  };
  for (NodeId id = 1; id <= 3; ++id) {
    start(id);
  }

  net::OmniClient client(endpoints);
  if (!client.Connect(Seconds(10))) {
    std::fprintf(stderr, "no server reachable\n");
    return 1;
  }
  std::printf("\nclient connected to server %d; replicating 500 commands...\n",
              client.connected_to());
  for (uint64_t cmd = 1; cmd <= 500; ++cmd) {
    if (!client.AppendAndWait(cmd, 8, Seconds(10))) {
      std::fprintf(stderr, "command %lu not decided\n", cmd);
      return 1;
    }
  }
  net::OmniClient::Status status;
  client.GetStatus(&status);
  std::printf("done: leader=s%d decided=%lu\n", status.leader, status.decided);

  // Stop a follower, keep replicating, bring it back — it recovers from its
  // WAL over the real sockets.
  NodeId victim = status.leader % 3 + 1;
  std::printf("\nstopping follower s%d...\n", victim);
  slots[victim].stop.store(true);
  slots[victim].thread.join();
  slots[victim].server = nullptr;
  for (uint64_t cmd = 501; cmd <= 600; ++cmd) {
    client.AppendAndWait(cmd, 8, Seconds(10));
  }
  std::printf("replicated 100 more without it; restarting s%d from WAL...\n", victim);
  slots[victim].stop.store(false);
  start(victim);

  net::OmniClient direct(std::map<NodeId, net::Endpoint>{{victim, endpoints[victim]}});
  net::OmniClient::Status recovered;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (direct.Connect(Seconds(2)) && direct.GetStatus(&recovered) &&
        recovered.decided >= 600) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("s%d caught up: decided=%lu\n\n", victim, recovered.decided);

  for (NodeId id = 1; id <= 3; ++id) {
    if (slots[id].server != nullptr) {
      slots[id].stop.store(true);
      slots[id].thread.join();
    }
    std::remove(("/tmp/tcp_cluster_node" + std::to_string(id) + ".wal").c_str());
  }
  std::printf("all servers stopped. To run as separate processes, see tools/omni_node.\n");
  return 0;
}
