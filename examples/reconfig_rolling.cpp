// reconfig_rolling — replace a server under load using the service layer's
// parallel log migration (§6), the way an operator rolls a new machine into a
// long-running cluster (or deploys a software upgrade, §6.1).
//
//   $ ./reconfig_rolling
#include <cstdio>

#include "src/rsm/omni_reconfig_sim.h"

int main() {
  using namespace opx;

  std::printf("== rolling reconfiguration with parallel log migration ==\n\n");

  rsm::ReconfigParams params;
  params.initial_servers = 5;
  params.replace_count = 1;  // {1..5} -> {1,2,3,4,6}
  params.preload_entries = 500'000;
  params.concurrent_proposals = 2'000;
  params.warmup = Seconds(10);
  params.run_after = Seconds(40);
  params.egress_bytes_per_sec = 8e6;

  std::printf("cluster c0 = {s1..s5} with a %lu-entry history (~%.0f MB); replacing s5\n",
              params.preload_entries,
              static_cast<double>(params.preload_entries) * 24.0 / 1e6);
  std::printf("with fresh server s6 while a client keeps %zu proposals in flight...\n\n",
              params.concurrent_proposals);

  rsm::OmniReconfigSim sim(params);
  const rsm::ReconfigResult r = sim.Run();

  const Time t0 = r.reconfig_proposed_at;
  std::printf("timeline (t=0 is the reconfiguration proposal):\n");
  std::printf("  %8.2fs  stop-sign decided in c0 — configuration sealed\n",
              ToSeconds(r.ss_decided_at - t0));
  std::printf("  %8.2fs  s6 finished fetching the c0 segment (parallel, from all\n"
              "            continuing servers via the service layer)\n",
              ToSeconds(r.migration_done_at - t0));
  std::printf("  %8.2fs  first command decided in c1\n",
              ToSeconds(r.new_config_first_decide - t0));
  std::printf("\nclient-observed down-time: %.0f ms\n", ToMillis(r.downtime));
  std::printf("peak old-leader egress per 5s window: %.1f MB (migration load was\n"
              "shared across all donors, not funneled through the leader)\n",
              static_cast<double>(r.peak_window_egress_old_leader) / 1e6);

  std::printf("\nthroughput per 5s window (k ops/s):");
  for (uint64_t count : r.window_counts) {
    std::printf(" %.1f", static_cast<double>(count) / 5.0 / 1000.0);
  }
  std::printf("\n");
  std::printf("\nthe dip around the reconfiguration is brief: continuing servers form a\n"
              "quorum in c1 immediately, and s6 catches up in the background.\n");
  return 0;
}
