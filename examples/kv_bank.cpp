// kv_bank — a replicated bank ledger on Omni-Paxos.
//
//   $ ./kv_bank
//
// Demonstrates building a real state machine on the replicated log: every
// server applies decided commands (account transfers) to its local KvStore.
// The run injects a leader crash and a partial partition mid-workload, then
// verifies the banking invariants: total balance conserved, and all replicas
// converge to the same state digest.
#include <cstdio>
#include <string>
#include <vector>

#include "src/kvstore/kv_store.h"
#include "src/rsm/local_cluster.h"
#include "src/util/rng.h"

namespace {

constexpr int kServers = 5;
constexpr int kAccounts = 16;
constexpr int64_t kInitialBalance = 1'000;

std::string AccountKey(int i) { return "acct-" + std::to_string(i); }

}  // namespace

int main() {
  using namespace opx;

  std::printf("== replicated bank ledger on Omni-Paxos ==\n\n");

  kv::CommandLog command_log;               // cmd_id -> command payload
  std::vector<kv::KvStore> replicas(kServers + 1);  // state machine per server

  rsm::LocalCluster cluster(kServers);
  cluster.set_apply([&](NodeId server, LogIndex, const omni::Entry& entry) {
    if (entry.cmd_id != 0 && !entry.IsStopSign()) {
      replicas[static_cast<size_t>(server)].Apply(command_log.Lookup(entry.cmd_id));
    }
  });

  NodeId leader = cluster.ElectLeader();
  std::printf("leader: s%d\n", leader);

  // Fund the accounts.
  for (int i = 0; i < kAccounts; ++i) {
    kv::Command put;
    put.type = kv::OpType::kPut;
    put.key = AccountKey(i);
    put.value = kInitialBalance;
    cluster.Append(leader, command_log.Register(put));
  }
  std::printf("funded %d accounts with %ld each (total %ld)\n", kAccounts, kInitialBalance,
              static_cast<int64_t>(kAccounts) * kInitialBalance);

  // Random transfers: each is two kAdd legs — both replicated, so the ledger
  // total is conserved on every replica that applied the decided prefix.
  Rng rng(2024);
  auto transfer = [&](NodeId at) {
    const int from = static_cast<int>(rng.NextBounded(kAccounts));
    int to = static_cast<int>(rng.NextBounded(kAccounts));
    if (to == from) {
      to = (to + 1) % kAccounts;
    }
    const int64_t amount = rng.NextInRange(1, 50);
    kv::Command debit;
    debit.type = kv::OpType::kAdd;
    debit.key = AccountKey(from);
    debit.value = -amount;
    kv::Command credit;
    credit.type = kv::OpType::kAdd;
    credit.key = AccountKey(to);
    credit.value = amount;
    cluster.Append(at, command_log.Register(debit));
    cluster.Append(at, command_log.Register(credit));
  };

  for (int i = 0; i < 200; ++i) {
    transfer(leader);
  }
  std::printf("applied 200 transfers\n");

  // Fault 1: crash the leader mid-stream.
  std::printf("\ncrashing leader s%d...\n", leader);
  cluster.Crash(leader);
  leader = cluster.ElectLeader();
  std::printf("new leader: s%d; continuing transfers\n", leader);
  for (int i = 0; i < 200; ++i) {
    transfer(leader);
  }

  // Fault 2: partial partition — the leader keeps only a chained connection.
  const NodeId cutoff = leader % kServers + 1;
  std::printf("\ncutting link s%d <-> s%d (partial partition)...\n", leader, cutoff);
  cluster.SetLink(leader, cutoff, false);
  for (int round = 0; round < 4; ++round) {
    cluster.Tick();
  }
  leader = cluster.CurrentLeader();
  std::printf("cluster still live with leader s%d (quorum-connected)\n", leader);
  for (int i = 0; i < 100; ++i) {
    transfer(leader);
  }

  cluster.SetLink(leader, cutoff, true);
  for (int round = 0; round < 4; ++round) {
    cluster.Tick();
  }

  // Verify: conserved total + identical digests on replicas that are caught up.
  std::printf("\nledger state per replica:\n");
  bool all_consistent = true;
  uint64_t reference_digest = 0;
  for (NodeId id = 1; id <= kServers; ++id) {
    if (cluster.IsCrashed(id)) {
      std::printf("  s%d: crashed\n", id);
      continue;
    }
    const kv::KvStore& store = replicas[static_cast<size_t>(id)];
    std::printf("  s%d: total=%ld version=%lu digest=%016lx\n", id, store.SumAll(),
                store.version(), store.Digest());
    if (store.SumAll() != static_cast<int64_t>(kAccounts) * kInitialBalance) {
      all_consistent = false;
    }
    if (reference_digest == 0) {
      reference_digest = store.Digest();
    } else if (store.Digest() != reference_digest) {
      all_consistent = false;
    }
  }
  std::printf("\ninvariants %s: balances conserved and replicas identical\n",
              all_consistent ? "HOLD" : "VIOLATED");
  return all_consistent ? 0 : 1;
}
