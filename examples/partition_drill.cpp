// partition_drill — a narrated walk through the paper's three
// partial-connectivity scenarios (§2, Fig. 1) on a latency-faithful simulated
// cluster, showing how quorum-connected leader election keeps Omni-Paxos live
// where classic protocols deadlock or livelock.
//
//   $ ./partition_drill
#include <cstdio>

#include "src/rsm/cluster_sim.h"
#include "src/rsm/adapters.h"
#include "src/rsm/scenarios.h"

namespace {

using namespace opx;

void Report(rsm::ClusterSim<rsm::OmniNode>& sim, const char* when) {
  std::printf("  [t=%6.2fs] %-28s leader=s%d decided=%lu ballots: ",
              ToSeconds(sim.simulator().Now()), when, sim.CurrentLeader(),
              sim.client().completed());
  for (NodeId id = 1; id <= sim.num_servers(); ++id) {
    std::printf("s%d:n=%lu,qc=%d ", id, sim.node(id).impl().ble().current_ballot().n,
                sim.node(id).impl().ble().quorum_connected() ? 1 : 0);
  }
  std::printf("\n");
}

void Drill(rsm::Scenario scenario) {
  std::printf("\n=== %s scenario ===\n", rsm::ScenarioName(scenario).c_str());
  rsm::ClusterParams params;
  params.num_servers = scenario == rsm::Scenario::kChained ? 3 : 5;
  params.election_timeout = Millis(50);
  params.concurrent_proposals = 100;
  params.proposal_rate = 10'000;
  params.preferred_leader = 1;
  rsm::ClusterSim<rsm::OmniNode> sim(params);

  sim.RunUntil(Seconds(2));
  Report(sim, "after warmup");
  const NodeId leader = sim.CurrentLeader();
  const NodeId hub = leader % params.num_servers + 1;

  rsm::LinkControl lc;
  lc.num_servers = params.num_servers;
  lc.set_link = [&sim](NodeId a, NodeId b, bool up) { sim.network().SetLink(a, b, up); };

  switch (scenario) {
    case rsm::Scenario::kQuorumLoss:
      std::printf("  cutting all links except those incident to s%d (the hub);\n", hub);
      std::printf("  leader s%d stays alive but loses quorum-connectivity\n", leader);
      rsm::ApplyQuorumLoss(lc, hub);
      break;
    case rsm::Scenario::kConstrained:
      std::printf("  early-cut s%d<->s%d so the hub's log falls behind...\n", hub, leader);
      rsm::ApplyConstrainedEarlyCut(lc, hub, leader);
      sim.RunUntil(sim.simulator().Now() + Millis(25));
      std::printf("  now fully isolating leader s%d; only hub s%d remains QC\n", leader, hub);
      rsm::ApplyConstrainedMainCut(lc, hub, leader);
      break;
    case rsm::Scenario::kChained: {
      NodeId other = kNoNode;
      for (NodeId id = 1; id <= 3; ++id) {
        if (id != leader && id != hub) {
          other = id;
        }
      }
      std::printf("  cutting s%d<->s%d: chain is s%d - s%d - s%d\n", leader, other, leader,
                  hub, other);
      rsm::ApplyChained(lc, leader, hub, other);
      break;
    }
  }

  const Time cut = sim.simulator().Now();
  const uint64_t decided_at_cut = sim.client().completed();
  for (int step = 1; step <= 5; ++step) {
    sim.RunUntil(cut + step * Millis(100));
    Report(sim, step == 1 ? "2 timeouts after cut" : "...");
  }
  sim.RunUntil(cut + Seconds(5));
  Report(sim, "5s into partition");
  std::printf("  decided during partition so far: %lu\n",
              sim.client().completed() - decided_at_cut);
  std::printf("  down-time: %.0f ms (recovery within ~4 election timeouts)\n",
              ToMillis(sim.client().LongestGap(cut, sim.simulator().Now())));

  rsm::HealAll(lc);
  sim.RunUntil(sim.simulator().Now() + Seconds(2));
  Report(sim, "after heal");
}

}  // namespace

int main() {
  std::printf("== Omni-Paxos partial-connectivity drill ==\n");
  std::printf("(ballots shown as n; qc = quorum-connected flag from BLE heartbeats)\n");
  Drill(rsm::Scenario::kQuorumLoss);
  Drill(rsm::Scenario::kConstrained);
  Drill(rsm::Scenario::kChained);
  std::printf("\nOmni-Paxos recovered from every scenario with a single leader change.\n");
  return 0;
}
