// Quickstart — a three-server Omni-Paxos replicated log in one process.
//
//   $ ./quickstart
//
// Walks through the core API: build a LocalCluster, elect a leader through
// Ballot Leader Election, replicate commands with Sequence Paxos, survive a
// leader crash, and show that every server decided the same log.
#include <cstdio>

#include "src/rsm/local_cluster.h"

int main() {
  using namespace opx;

  std::printf("== Omni-Paxos quickstart ==\n\n");

  // 1. Three servers, fully connected, in-process.
  rsm::LocalCluster cluster(3);

  // 2. BLE exchanges heartbeat rounds until a quorum-connected server is
  //    elected (§5.2). Each Tick() is one election-timeout period.
  const NodeId leader = cluster.ElectLeader();
  std::printf("elected leader: server %d (ballot %lu)\n", leader,
              cluster.node(leader).ble().leader().n);

  // 3. Replicate commands. Append at the leader (followers would forward).
  for (uint64_t cmd = 1; cmd <= 5; ++cmd) {
    cluster.Append(leader, /*cmd_id=*/cmd);
  }
  std::printf("appended 5 commands; decided index at every server:");
  for (NodeId id = 1; id <= 3; ++id) {
    std::printf(" s%d=%lu", id, cluster.node(id).decided_idx());
  }
  std::printf("\n");

  // 4. Crash the leader. The survivors detect the failure through missing
  //    heartbeats and elect a new quorum-connected leader.
  std::printf("\ncrashing leader s%d...\n", leader);
  cluster.Crash(leader);
  const NodeId new_leader = cluster.ElectLeader();
  std::printf("new leader: server %d\n", new_leader);

  // 5. The new leader first synchronizes the log (Prepare phase, §4.1.1),
  //    then accepts new commands.
  for (uint64_t cmd = 6; cmd <= 8; ++cmd) {
    cluster.Append(new_leader, cmd);
  }

  // 6. Restart the crashed server from its persistent storage; it re-enters
  //    via <PrepareReq> and catches up (§4.1.3).
  std::printf("restarting s%d from persistent storage...\n", leader);
  cluster.Restart(leader);
  cluster.Tick();

  std::printf("\nfinal decided logs (SC2: prefixes of one another):\n");
  for (NodeId id = 1; id <= 3; ++id) {
    std::printf("  s%d:", id);
    const auto& storage = cluster.storage(id);
    for (LogIndex i = 0; i < cluster.node(id).decided_idx(); ++i) {
      std::printf(" %lu", storage.At(i).cmd_id);
    }
    std::printf("\n");
  }
  std::printf("\nall servers decided identical logs — Sequence Consensus holds.\n");
  return 0;
}
